"""The iterative exact-synthesis flow (Figure 1 of the paper).

Starting from depth 0, each iteration asks the selected decision engine
whether a cascade of ``d`` gates realizing the specification exists; the
first satisfiable depth is the minimal gate count.  Engines:

* ``"bdd"``   — quantified synthesis on BDDs (Section 5.2, the paper's
  contribution; returns *all* minimal networks),
* ``"qbf"``   — quantified synthesis via a QBF solver (Section 5.1),
* ``"sat"``   — the per-truth-table-row SAT baseline of [9]/[22],
* ``"sword"`` — a specialized word-level search solver standing in for
  SWORD [21, 22] (problem-specific knowledge, no generic encoding).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional, Sequence, Tuple, Type, Union

import repro.obs as obs
from repro.core.cancel import CancelledError
from repro.core.library import GateLibrary
from repro.core.spec import Specification
from repro.synth.bdd_engine import BddSynthesisEngine, DepthOutcome
from repro.synth.qbf_engine import QbfSolverEngine
from repro.synth.result import DepthStat, SynthesisResult
from repro.synth.sat_engine import SatBaselineEngine
from repro.synth.sword_engine import SwordEngine

__all__ = ["ENGINES", "INCREMENTAL_ENGINES", "MIN_DEPTH_BUDGET",
           "STATELESS_ENGINES", "default_gate_limit", "engine_session",
           "plan_depth_range", "synthesize"]

ENGINES: Dict[str, Type] = {
    "bdd": BddSynthesisEngine,
    "qbf": QbfSolverEngine,
    "sat": SatBaselineEngine,
    "sword": SwordEngine,
}

#: Engines whose per-depth queries are independent of one another, so
#: depth decisions may be computed out of order (speculative depth
#: pipelining).  The BDD engine is excluded: its cascade is built
#: incrementally and each depth extends the previous one's BDD state.
STATELESS_ENGINES = frozenset({"qbf", "sat", "sword"})

#: Engines able to reuse solver/cascade state across the depth loop: the
#: BDD engine's cascade is incremental by construction, and the SAT/QBF
#: engines keep a warm assumption-based CDCL solver inside a driver
#: session.  All accept an ``incremental=False`` engine option (the
#: CLI's ``--no-incremental``) forcing per-depth scratch evaluation.
INCREMENTAL_ENGINES = frozenset({"bdd", "sat", "qbf"})

#: Smallest per-depth time budget worth starting an engine call for: the
#: engines spend more than this constructing their encoding, so a tinier
#: remaining slice is reported as a timeout instead of being burned.
MIN_DEPTH_BUDGET = 1e-3


@contextmanager
def engine_session(instance, keep_open: bool = False):
    """Engine session protocol around one iterative-deepening run.

    Engines that reuse solver state across depths expose
    ``begin_session()`` / ``end_session()``; the driver (and the
    speculative pipeline's depth servers) bracket their depth loops with
    this context manager so a warm solver lives exactly as long as one
    run.  ``begin_session()`` returns whether an incremental session
    actually opened — the yielded value, recorded as
    ``SynthesisResult.incremental``.

    Engines without the protocol get a compatibility shim: nothing is
    called, and the yielded value falls back to the engine's
    ``incremental`` attribute (the BDD engine's cascade is inherently
    incremental; stateless engines like ``sword`` report False).  A bare
    ``engine.decide()`` call outside any session always evaluates from
    scratch, which keeps one-off depth queries side-effect free.

    An engine whose ``session_active`` property reports an already-open
    session is *resumed*, not restarted — ``begin_session()`` would
    discard the warm solver state a pooled engine was kept alive for.
    ``keep_open=True`` additionally skips ``end_session()`` on exit, so
    the caller (the serve daemon's session pool) owns the session's
    remaining lifetime and must eventually call ``end_session()``.
    """
    begin = getattr(instance, "begin_session", None)
    if begin is None:
        yield bool(getattr(instance, "incremental", False))
        return
    if getattr(instance, "session_active", False):
        active = True
    else:
        active = bool(begin())
    try:
        yield active
    finally:
        if not keep_open:
            end = getattr(instance, "end_session", None)
            if end is not None:
                end()


def default_gate_limit(n_lines: int) -> int:
    """A generous upper bound on the minimal gate count.

    Any reversible function over ``n`` lines has an MCT realization with
    at most ``n * 2^n`` gates (one stage per truth-table mismatch in a
    transformation-based sweep); the iterative loop never comes close on
    the paper's benchmarks, so the bound only guards against runaway
    loops on unrealizable incompletely specified inputs.
    """
    return n_lines * (1 << n_lines)


def plan_depth_range(spec: Specification,
                     library: GateLibrary,
                     max_gates: Optional[int] = None,
                     use_bounds: bool = False) -> Tuple[int, int]:
    """The iterative-deepening plan: (start depth, inclusive gate limit).

    Factored out of :func:`synthesize` so the speculative depth pipeline
    (:mod:`repro.parallel.speculative`) plans the identical range and
    its committed trajectory matches the serial one depth for depth.
    """
    limit = (max_gates if max_gates is not None
             else default_gate_limit(spec.n_lines))
    start_depth = 0
    if use_bounds:
        from repro.core.library import mct_gates
        from repro.synth.bounds import lower_bound, upper_bound
        start_depth = lower_bound(spec, library)
        if max_gates is None:
            # The MMD cap is a Toffoli network, so it is only an upper
            # bound for libraries containing every MCT gate.
            if set(mct_gates(spec.n_lines)) <= set(library.gates):
                heuristic_cap = upper_bound(spec)
                if heuristic_cap is not None:
                    limit = min(limit, heuristic_cap)
    return start_depth, limit


def _resolve_library(spec: Specification,
                     library: Optional[GateLibrary],
                     kinds: Optional[Sequence[str]],
                     engine: Union[str, object]) -> GateLibrary:
    """The library the run uses, rejecting silently-ignored arguments.

    When ``engine`` is an instance it was already constructed around a
    library; a *conflicting* explicit ``library``/``kinds`` would be
    dead weight the caller almost certainly meant to take effect, so it
    raises instead of being dropped (matching arguments stay allowed —
    callers legitimately pass the same library to both).
    """
    if isinstance(engine, str):
        if library is not None:
            return library
        return GateLibrary.from_kinds(spec.n_lines, kinds or ("mct",))
    bound = getattr(engine, "library", None)
    if bound is None:
        if library is not None:
            return library
        return GateLibrary.from_kinds(spec.n_lines, kinds or ("mct",))
    for argument, value in (("library", library),
                            ("kinds", GateLibrary.from_kinds(
                                spec.n_lines, kinds) if kinds else None)):
        if value is not None and tuple(value.gates) != tuple(bound.gates):
            raise ValueError(
                f"conflicting {argument}: engine instance was built with "
                f"library {bound.name!r} but {argument}={value.name!r} was "
                f"passed explicitly; construct the engine with the intended "
                f"library or drop the argument")
    return bound


def synthesize(spec: Specification,
               library: Optional[GateLibrary] = None,
               kinds: Optional[Sequence[str]] = None,
               engine: Union[str, object] = "bdd",
               max_gates: Optional[int] = None,
               time_limit: Optional[float] = None,
               use_bounds: bool = False,
               trace: Optional[str] = None,
               workers: int = 1,
               store: Optional[Union[str, object]] = None,
               orbit: bool = True,
               warm_instance: Optional[object] = None,
               keep_session: bool = False,
               **engine_options) -> SynthesisResult:
    """Exact synthesis: minimal number of library gates realizing ``spec``.

    Returns a :class:`SynthesisResult`; with the BDD engine it carries
    every minimal network plus the exact solution count and quantum-cost
    range, with the other engines a single realization.

    ``kinds`` defaults to ``("mct",)`` when neither it nor ``library``
    is given.  Passing a ``library`` or ``kinds`` that conflicts with an
    already-constructed engine instance raises :class:`ValueError`
    instead of being silently ignored.

    The depth loop runs inside an engine session
    (:func:`engine_session`): the SAT and QBF engines keep one warm
    assumption-based CDCL solver across all depths (pass
    ``incremental=False`` as an engine option — the CLI's
    ``--no-incremental`` — to force per-depth scratch solving), the BDD
    engine's cascade is incremental by construction, and ``sword``
    re-searches per depth.  ``result.incremental`` records which mode
    actually ran.

    ``use_bounds=True`` seeds the loop with the admissible lower bound of
    :mod:`repro.synth.bounds` (skipping provably unrealizable shallow
    depths) and, for completely specified functions, caps ``max_gates``
    with the MMD-heuristic upper bound.  Note the BDD engine still builds
    the skipped cascade stages — only their equality checks and
    quantifications are saved.

    ``trace`` names a JSONL file; one schema-valid run record (see
    :mod:`repro.obs.runrecord`) is appended per call.  Per-depth engine
    metrics always land in ``result.per_depth[*].metrics`` and the
    run-level aggregate in ``result.metrics`` — the raw counters are so
    cheap they are never turned off; only span *timing* needs an
    explicit ``obs.set_tracing(True)``.

    ``store`` names a persistent store directory (or passes an opened
    :class:`repro.store.SynthesisStore`).  The run is addressed by a
    content digest of the spec, library, engine and answer-affecting
    options (:func:`repro.store.store_key`): a stored result is
    returned without touching an engine (``result.store_hit``), a
    banked UNSAT bound makes the depth loop resume from ``bound + 1``
    (``result.store_resumed_from``), and on the way out the run's own
    proofs are committed for the next caller — including partial
    deepening from timeouts and cancellations.  Requires ``engine`` to
    be an engine *name*; an instance carries state the digest cannot
    faithfully address, so combining the two raises :class:`ValueError`.

    ``orbit`` (default True) canonicalizes the store address over the
    spec's equivalence orbit (:mod:`repro.store.orbit`): line
    relabelings, negation conjugations and the functional inverse all
    share one cache entry, replayed back into the caller's frame
    through a recorded witness transform and re-verified gate for gate.
    It silently degrades to the literal key for incompletely specified
    functions, libraries not closed under the orbit group and wide
    specs; ``orbit=False`` (the CLI's ``--no-orbit``) forces literal
    addressing.  Cold-run results and records are identical either way
    — only the cache address changes.

    **Warm-session reuse** (the serve daemon's pool): ``warm_instance``
    hands in an engine whose deepening session is still open from an
    earlier interrupted run of the *same configuration* — the depth
    loop resumes from its hot solver state instead of re-encoding.  The
    instance must match ``engine`` (still passed as a name, so store
    addressing keeps working) and ``spec``; the caller guarantees the
    library and engine options match the instance's construction (the
    pool keys on the literal store digest, which covers exactly that).
    When a ``cancel_token`` engine option is supplied it is rebound on
    the instance so a fresh request controls cancellation.
    ``keep_session=True`` leaves the session open on the way out and
    hands the engine back via ``result.engine_instance`` — the caller
    then owns ``end_session()``.  Both knobs require serial execution
    (``workers == 1``, not portfolio).

    **Parallel execution** (:mod:`repro.parallel`):

    * ``engine="portfolio"`` races every registered engine on the spec
      in worker processes and returns the first completed result
      (``workers`` caps the racer count);
    * ``workers > 1`` with a stateless engine (``sat``, ``qbf``,
      ``sword``) pipelines depth decisions ``d..d+workers-1``
      speculatively and commits the lowest satisfiable depth;
    * ``workers > 1`` with the ``bdd`` engine falls back to the serial
      cascade — its depth queries are incremental (each extends the
      previous depth's BDD state), so there is no depth-level
      parallelism to exploit; the argument is accepted and recorded
      but does not change execution.
    """
    if warm_instance is not None or keep_session:
        if engine == "portfolio" or workers > 1:
            raise ValueError(
                "warm_instance/keep_session require serial execution — "
                "engine sessions live in this process")
    if warm_instance is not None:
        if not isinstance(engine, str):
            raise ValueError(
                "warm_instance needs engine passed as a name; passing the "
                "instance twice is ambiguous")
        if getattr(warm_instance, "name", None) != engine:
            raise ValueError(
                f"warm_instance is a {getattr(warm_instance, 'name', '?')!r} "
                f"engine but engine={engine!r} was requested")
        bound_spec = getattr(warm_instance, "spec", None)
        if bound_spec is not None and bound_spec != spec:
            raise ValueError(
                "warm_instance was built for a different specification; "
                "warm sessions are spec-specific (their encodings bake the "
                "truth-table rows in)")
    if engine == "portfolio":
        from repro.parallel.portfolio import portfolio_synthesize
        resolved = _resolve_library(spec, library, kinds, "bdd")
        # workers=1 is synthesize()'s serial default; for a race it
        # means "no cap" — every engine runs concurrently.
        return portfolio_synthesize(
            spec, resolved, max_gates=max_gates, time_limit=time_limit,
            use_bounds=use_bounds, trace=trace,
            workers=0 if workers <= 1 else workers,
            store=store, orbit=orbit, engine_options=engine_options)
    if workers > 1 and isinstance(engine, str) and engine in STATELESS_ENGINES:
        from repro.parallel.speculative import speculative_synthesize
        resolved = _resolve_library(spec, library, kinds, engine)
        return speculative_synthesize(
            spec, resolved, engine, max_gates=max_gates,
            time_limit=time_limit, use_bounds=use_bounds, trace=trace,
            workers=workers, store=store, orbit=orbit,
            engine_options=engine_options)

    library = _resolve_library(spec, library, kinds, engine)
    start_depth, limit = plan_depth_range(spec, library, max_gates, use_bounds)

    store_obj = None
    key = None
    store_start_depth = start_depth
    start = time.perf_counter()
    if store is not None:
        from repro.store import open_store
        from repro.store.orbit import derive_store_key
        from repro.store.payload import (hit_trace_record, store_commit,
                                         store_lookup)
        store_obj = open_store(store)
        key = derive_store_key(spec, library, engine, max_gates=max_gates,
                               use_bounds=use_bounds,
                               engine_options=engine_options, orbit=orbit)
        hit, entry, start_depth = store_lookup(
            store_obj, key, spec, engine, start_depth)
        if hit is not None:
            # Served entirely from the result store: no engine is ever
            # constructed.  The trace re-emits the stored canonical
            # record (plus fresh volatile fields) byte for byte.
            hit.runtime = time.perf_counter() - start
            if trace is not None:
                obs.append_record(trace, hit_trace_record(entry, hit))
            obs.emit("run_finished", spec=hit.spec_name, engine=hit.engine,
                     status=hit.status, depth=hit.depth, runtime=hit.runtime,
                     store_hit=True)
            return hit

    if warm_instance is not None:
        instance = warm_instance
        if "cancel_token" in engine_options:
            from repro.core.cancel import as_token
            instance.cancel_token = as_token(engine_options["cancel_token"])
    elif isinstance(engine, str):
        try:
            engine_cls = ENGINES[engine]
        except KeyError:
            raise ValueError(f"unknown engine {engine!r}; "
                             f"available: {sorted(ENGINES)}") from None
        instance = engine_cls(spec, library, **engine_options)
    else:
        instance = engine

    result = SynthesisResult(engine=instance.name,
                             spec_name=spec.name or "anonymous",
                             status="gate_limit")
    if start_depth > store_start_depth:
        result.store_resumed_from = start_depth - 1
    deadline = None if time_limit is None else start + time_limit

    with obs.span("synthesize", spec=result.spec_name,
                  engine=instance.name), \
            engine_session(instance, keep_open=keep_session) as warm:
        result.incremental = warm
        for depth in range(start_depth, limit + 1):
            remaining = None
            if deadline is not None:
                # Clamp: a sliver of budget is not worth an engine call —
                # the encoding construction alone would overrun it.
                remaining = max(0.0, deadline - time.perf_counter())
                if remaining <= MIN_DEPTH_BUDGET:
                    result.status = "timeout"
                    break
            step_start = time.perf_counter()
            obs.emit("depth_started", spec=result.spec_name,
                     engine=instance.name, depth=depth)
            try:
                with obs.span("depth", depth=depth, engine=instance.name):
                    outcome: DepthOutcome = instance.decide(
                        depth, time_limit=remaining)
            except CancelledError:
                # Cooperative cancellation (portfolio loser / Ctrl-C
                # drain): keep the per-depth trajectory gathered so far
                # so the coordinator can still merge partial metrics.
                result.status = "cancelled"
                break
            step_time = time.perf_counter() - step_start
            timed_out = outcome.status == "unknown"
            result.per_depth.append(
                DepthStat(depth=depth, decision=outcome.status,
                          runtime=step_time, detail=dict(outcome.detail),
                          metrics=dict(outcome.metrics), timed_out=timed_out))
            if timed_out:
                result.status = "timeout"
                break
            if outcome.status == "sat":
                result.status = "realized"
                result.depth = depth
                result.circuits = outcome.circuits
                result.num_solutions = outcome.num_solutions
                result.quantum_cost_min = outcome.quantum_cost_min
                result.quantum_cost_max = outcome.quantum_cost_max
                result.solutions_truncated = outcome.solutions_truncated
                obs.emit("solution_found", spec=result.spec_name,
                         engine=instance.name, depth=depth,
                         num_solutions=outcome.num_solutions)
                break
            # UNSAT at this depth: a freshly proven lower bound.
            obs.emit("depth_refuted", spec=result.spec_name,
                     engine=instance.name, depth=depth, proven_bound=depth)

    result.runtime = time.perf_counter() - start
    if keep_session:
        result.engine_instance = instance
    _aggregate_metrics(result)
    obs.publish(result.metrics)
    if store_obj is not None:
        # Bank what this run proved — a definitive answer for the result
        # store, and the contiguous UNSAT prefix for the ledger even on
        # timeout/cancellation.
        store_commit(store_obj, key, result, library, start_depth, spec=spec)
    if trace is not None:
        library_obj = getattr(instance, "library", library)
        extra = ({"store_resumed_from": result.store_resumed_from}
                 if result.store_resumed_from is not None else None)
        obs.append_record(trace,
                          obs.build_run_record(result, library_obj,
                                               extra=extra))
    obs.emit("run_finished", spec=result.spec_name, engine=instance.name,
             status=result.status, depth=result.depth,
             runtime=result.runtime)
    return result


def _aggregate_metrics(result: SynthesisResult) -> None:
    """Fold per-depth metrics into ``result.metrics`` + driver figures."""
    totals: Dict[str, float] = {}
    for step in result.per_depth:
        obs.merge_metrics(totals, step.metrics)
    totals["driver.depths_tried"] = len(result.per_depth)
    totals["driver.unsat_depths"] = sum(
        1 for s in result.per_depth if s.decision == "unsat")
    totals["driver.timed_out_depths"] = sum(
        1 for s in result.per_depth if s.timed_out)
    result.metrics = totals
