"""Transformation-based heuristic synthesis (Miller/Maslov/Dueck, DAC'03).

The paper cites transformation-based synthesis [13] as the canonical
*heuristic* alternative to exact methods: it produces a valid Toffoli
network for any reversible function in a single truth-table sweep, but
the result is generally far from minimal — which is precisely the gap
exact synthesis closes.  Implemented here both as a comparator (the
``bench_heuristic_vs_exact`` study) and as a practical upper bound for
the iterative driver's gate limit.

Algorithm (unidirectional MMD): walk the truth table in input order
``x = 0, 1, 2, ...`` and append Toffoli gates at the *output* side that
map the current image ``y = f(x)`` to ``x``:

1. flip every bit set in ``x`` but not in ``y`` using the set bits of
   ``y`` as controls (then ``y`` only has surplus bits),
2. flip every surplus bit using the set bits of ``x`` as controls.

Because the controls always form a subset of the pattern being fixed, no
earlier row ``x' < x`` (already equal to its image) is disturbed.  The
collected gates map ``f`` to the identity, so the circuit realizing
``f`` is their reversal (Toffoli gates are self-inverse).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.circuit import Circuit
from repro.core.gates import Toffoli
from repro.core.spec import Specification

__all__ = ["transformation_synthesize", "mmd_gate_count_upper_bound"]


def _bits(value: int, n: int) -> List[int]:
    return [i for i in range(n) if (value >> i) & 1]


def transformation_synthesize(spec: Specification) -> Circuit:
    """Heuristic MCT synthesis of a completely specified function.

    Always succeeds; the gate count is an upper bound on the exact
    minimum.  Raises for incompletely specified functions (assign the
    don't cares first — exact synthesis handles them natively).
    """
    if not spec.is_completely_specified():
        raise ValueError("transformation-based synthesis needs a complete "
                         "truth table; use exact synthesis for don't cares")
    n = spec.n_lines
    perm = list(spec.permutation())
    gates: List[Toffoli] = []

    def apply_output_side(gate: Toffoli) -> None:
        for i in range(len(perm)):
            perm[i] = gate.apply(perm[i])
        gates.append(gate)

    # Step 0: fix f(0) = 0 with uncontrolled NOTs.
    for bit in _bits(perm[0], n):
        apply_output_side(Toffoli((), bit))

    for x in range(1, len(perm)):
        y = perm[x]
        if y == x:
            continue
        # Phase 1: set the bits missing from y, controlled on y's bits.
        for bit in _bits(x & ~y, n):
            controls = _bits(y, n)
            apply_output_side(Toffoli(controls, bit))
            y |= 1 << bit
        # Phase 2: clear y's surplus bits, controlled on x's bits.
        for bit in _bits(y & ~x, n):
            controls = _bits(x, n)
            apply_output_side(Toffoli(controls, bit))
            y &= ~(1 << bit)
        assert perm[x] == x

    # gates map f to identity at the output side; reversing them (each is
    # self-inverse) yields a cascade computing f.
    circuit = Circuit(n, tuple(reversed(gates)))
    if not spec.matches_circuit(circuit):
        raise AssertionError("MMD synthesis produced a wrong circuit — bug")
    return circuit


def mmd_gate_count_upper_bound(spec: Specification) -> int:
    """Gate count of the heuristic realization (an exact-depth upper bound)."""
    return len(transformation_synthesize(spec))
