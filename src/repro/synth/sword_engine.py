"""Specialized word-level search synthesis — the SWORD stand-in.

The paper's strongest baseline, SWORD [21, 22], is a closed-source SAT
solver that reasons over word-level structure instead of a bit-blasted
encoding.  This engine substitutes it with a solver exploiting the same
kind of problem-specific knowledge directly:

* **word-level state** — the cascade built so far is represented as one
  bit-vector per circuit line (column of the truth table, ``2^n`` bits
  packed into a Python integer); applying a gate is a handful of
  bitwise operations on whole columns;
* **depth-first iterative deepening** with an admissible lower bound —
  every line whose column still mismatches the specification needs at
  least one more gate targeting it, so
  ``ceil(mismatched_lines / max_targets_per_gate)`` more gates are
  required;
* **symmetry breaking** — a self-inverse gate never follows itself, and
  gates on disjoint line sets are forced into canonical (library) order;
* **a transposition table** recording, per visited state, the largest
  remaining budget that already failed.

The transposition table is keyed on ``(previous gate, state columns)``,
not on the columns alone: the legal successor set at a node depends on
the ``previous`` gate through the symmetry-breaking rules above, so a
failure proven under one predecessor does not in general transfer to a
node reached through another (whose pruned-away gate might have been
exactly the one that works).  When a node's expansion skipped *no*
gate, its failure is predecessor-independent and is banked under a
universal key instead, which recovers most of the sharing a
columns-only table had — soundly.

It finds a single minimal realization per run — like the paper's SAT
baselines and unlike the all-solutions BDD engine.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import repro.obs as obs
from repro.core.cancel import CancelToken, as_token
from repro.core.circuit import Circuit
from repro.core.gates import Fredkin, Gate, InversePeres, Peres, Toffoli
from repro.core.library import GateLibrary
from repro.core.spec import Specification
from repro.synth.bdd_engine import DepthOutcome

__all__ = ["SwordEngine"]

Columns = Tuple[int, ...]


class _Timeout(Exception):
    pass


class SwordEngine:
    """Word-level iterative-deepening search with pruning."""

    name = "sword"

    def __init__(self, spec: Specification, library: GateLibrary,
                 transposition_limit: int = 2_000_000,
                 cancel_token: Optional[CancelToken] = None):
        if library.n_lines != spec.n_lines:
            raise ValueError("library and specification widths differ")
        self.cancel_token = as_token(cancel_token)
        self.spec = spec
        self.library = library
        self.n = spec.n_lines
        rows = 1 << self.n
        self.full_mask = (1 << rows) - 1

        # Identity columns: bit i of column l = bit l of input i.
        self.initial: Columns = tuple(
            sum(((i >> l) & 1) << i for i in range(rows)) for l in range(self.n)
        )
        # Specification masks per line: where is the output specified, and
        # what value must the specified bits take.
        self.care_masks: List[int] = []
        self.value_masks: List[int] = []
        for l in range(self.n):
            care = 0
            value = 0
            for i, row in enumerate(spec.rows):
                if row[l] is not None:
                    care |= 1 << i
                    if row[l]:
                        value |= 1 << i
            self.care_masks.append(care)
            self.value_masks.append(value)

        self.max_targets = max(len(g.targets) for g in library)
        self._self_inverse = [isinstance(g, (Toffoli, Fredkin)) for g in library]
        self._gate_lines = [g.lines() for g in library]
        # Transposition table: (previous gate index, state) -> largest
        # remaining budget proven hopeless.  Previous index -1 marks a
        # universal entry: its node skipped no successor, so the
        # failure holds regardless of how the state was reached.
        self._failed: Dict[Tuple[int, Columns], int] = {}
        self._transposition_limit = transposition_limit
        self._deadline: Optional[float] = None
        self._node_counter = 0
        self._lb_prunes = 0
        self._budget_exhausted = 0
        self._tt_prunes = 0

    # -- word-level gate application ------------------------------------------------

    def _apply(self, gate: Gate, cols: Columns) -> Columns:
        new_cols = list(cols)
        if isinstance(gate, Toffoli):
            active = self.full_mask
            for c in gate.controls:
                column = cols[c]
                if c in gate.negative_controls:
                    column ^= self.full_mask
                active &= column
            new_cols[gate.target] ^= active
        elif isinstance(gate, Fredkin):
            a, b = gate.targets
            active = cols[a] ^ cols[b]
            for c in gate.controls:
                active &= cols[c]
            new_cols[a] ^= active
            new_cols[b] ^= active
        elif isinstance(gate, Peres):
            a, b = gate.targets
            c = gate.control
            new_cols[b] ^= cols[c] & cols[a]
            new_cols[a] ^= cols[c]
        elif isinstance(gate, InversePeres):
            a, b = gate.targets
            c = gate.control
            new_cols[b] ^= cols[c] & (cols[a] ^ self.full_mask)
            new_cols[a] ^= cols[c]
        else:
            raise TypeError(f"unsupported gate type {type(gate).__name__}")
        return tuple(new_cols)

    # -- heuristics ---------------------------------------------------------------------

    def _mismatched_lines(self, cols: Columns) -> int:
        count = 0
        for l in range(self.n):
            if (cols[l] ^ self.value_masks[l]) & self.care_masks[l]:
                count += 1
        return count

    def _lower_bound(self, cols: Columns) -> int:
        mismatched = self._mismatched_lines(cols)
        if mismatched == 0:
            return 0
        return -(-mismatched // self.max_targets)  # ceil division

    def _is_goal(self, cols: Columns) -> bool:
        return all((cols[l] ^ self.value_masks[l]) & self.care_masks[l] == 0
                   for l in range(self.n))

    # -- search --------------------------------------------------------------------------

    def decide(self, depth: int,
               time_limit: Optional[float] = None) -> DepthOutcome:
        """Is there a cascade of at most ``depth`` library gates?"""
        self._deadline = (None if time_limit is None
                          else time.perf_counter() + time_limit)
        path: List[Gate] = []
        before = (self._node_counter, self._lb_prunes,
                  self._budget_exhausted, self._tt_prunes)
        try:
            with obs.span("sword.search", depth=depth):
                found = self._dfs(self.initial, depth, -1, path)
        except _Timeout:
            return DepthOutcome(status="unknown",
                                detail=dict(self._search_stats(before),
                                            timeout=True),
                                metrics=self._metrics(before))
        detail = self._search_stats(before)
        metrics = self._metrics(before)
        if not found:
            return DepthOutcome(status="unsat", detail=detail, metrics=metrics)
        circuit = Circuit(self.n, path)
        if not self.spec.matches_circuit(circuit):
            raise AssertionError("SWORD engine produced a circuit violating "
                                 "the specification — search bug")
        cost = circuit.quantum_cost()
        return DepthOutcome(status="sat", circuits=[circuit],
                            quantum_cost_min=cost, quantum_cost_max=cost,
                            detail=detail, metrics=metrics)

    def _search_stats(self, before: Tuple[int, int, int, int]
                      ) -> Dict[str, object]:
        """This query's search statistics (the counters span all depths)."""
        nodes, lb, exhausted, tt = before
        return {
            "nodes_visited": self._node_counter - nodes,
            "lb_prunes": self._lb_prunes - lb,
            "budget_exhausted": self._budget_exhausted - exhausted,
            "tt_prunes": self._tt_prunes - tt,
            "transpositions": len(self._failed),
        }

    def _metrics(self, before: Tuple[int, int, int, int]) -> Dict[str, float]:
        return {"sword." + key: value
                for key, value in self._search_stats(before).items()}

    def _dfs(self, cols: Columns, budget: int, previous: int,
             path: List[Gate]) -> bool:
        self._node_counter += 1
        if (self._node_counter & 255) == 0:
            self.cancel_token.raise_if_cancelled()
            if (self._deadline is not None
                    and time.perf_counter() > self._deadline):
                raise _Timeout
        if self._is_goal(cols):
            return True
        if budget <= 0:
            self._budget_exhausted += 1
            return False
        if self._lower_bound(cols) > budget:
            self._lb_prunes += 1
            return False
        # A universal entry (-1) refutes the state for any predecessor;
        # an entry recorded under this exact predecessor refutes it for
        # this one — either suffices.
        failed = self._failed
        refuted = failed.get((-1, cols), -1)
        if previous >= 0:
            other = failed.get((previous, cols), -1)
            if other > refuted:
                refuted = other
        if refuted >= budget:
            self._tt_prunes += 1
            return False
        previous_lines = self._gate_lines[previous] if previous >= 0 else None
        skipped = False
        for index, gate in enumerate(self.library.gates):
            if previous >= 0:
                # A self-inverse gate immediately undone is never minimal.
                if index == previous and self._self_inverse[index]:
                    skipped = True
                    continue
                # Canonical order for trivially commuting neighbours.
                if (index < previous
                        and not (self._gate_lines[index] & previous_lines)):
                    skipped = True
                    continue
            successor = self._apply(gate, cols)
            path.append(gate)
            if self._dfs(successor, budget - 1, index, path):
                return True
            path.pop()
        if len(failed) < self._transposition_limit:
            # With no skipped successor the full gate set was refuted:
            # any cascade from here has a canonical reordering whose
            # first gate was explored, so the failure is valid for
            # every predecessor.  Otherwise it only refutes canonical
            # continuations of this exact predecessor.
            key = (previous if skipped else -1, cols)
            if budget > failed.get(key, -1):
                failed[key] = budget
        return False
