"""Result types for the synthesis engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.circuit import Circuit

__all__ = ["DepthStat", "SynthesisResult"]


@dataclass
class DepthStat:
    """Statistics of one iteration of the Figure-1 loop."""

    depth: int
    decision: str  # "sat", "unsat" or "unknown"
    runtime: float
    detail: str = ""  # engine-specific, e.g. BDD sizes or clause counts


@dataclass
class SynthesisResult:
    """Outcome of exact synthesis.

    ``status``:

    * ``"realized"`` — minimal circuits found; ``depth`` is minimal.
    * ``"timeout"`` — the time budget ran out before a decision.
    * ``"gate_limit"`` — every depth up to the limit is unrealizable.

    ``circuits`` holds every found realization (all of them for the BDD
    engine, a single one for the SAT/SWORD/QBF engines).  ``num_solutions``
    is the exact count of minimal networks when the engine knows it (BDD
    model counting), else the number of circuits returned.
    """

    engine: str
    spec_name: str
    status: str
    depth: Optional[int] = None
    circuits: List[Circuit] = field(default_factory=list)
    num_solutions: Optional[int] = None
    quantum_cost_min: Optional[int] = None
    quantum_cost_max: Optional[int] = None
    runtime: float = 0.0
    per_depth: List[DepthStat] = field(default_factory=list)
    solutions_truncated: bool = False

    @property
    def realized(self) -> bool:
        return self.status == "realized"

    @property
    def circuit(self) -> Optional[Circuit]:
        """The cheapest found realization (by quantum cost, then order)."""
        if not self.circuits:
            return None
        return min(self.circuits, key=lambda c: c.quantum_cost())

    def summary(self) -> str:
        if not self.realized:
            return (f"{self.spec_name} [{self.engine}]: {self.status} "
                    f"after {self.runtime:.2f}s")
        parts = [f"{self.spec_name} [{self.engine}]: D={self.depth}",
                 f"time={self.runtime:.2f}s"]
        if self.num_solutions is not None:
            parts.append(f"#SOL={self.num_solutions}")
        if self.quantum_cost_min is not None:
            if self.quantum_cost_min == self.quantum_cost_max:
                parts.append(f"QC={self.quantum_cost_min}")
            else:
                parts.append(f"QC={self.quantum_cost_min}..{self.quantum_cost_max}")
        return " ".join(parts)
