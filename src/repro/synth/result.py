"""Result types for the synthesis engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.circuit import Circuit

__all__ = ["DepthStat", "SynthesisResult"]


@dataclass
class DepthStat:
    """Statistics of one iteration of the Figure-1 loop.

    ``detail`` is an engine-specific dict (BDD sizes, clause counts,
    search statistics); ``metrics`` carries the depth's figures under
    the stable names of ``docs/observability.md``.  ``timed_out`` marks
    an "unknown" decision caused by the time budget, distinguishing it
    from a genuine UNSAT for downstream tooling.
    """

    depth: int
    decision: str  # "sat", "unsat" or "unknown"
    runtime: float
    detail: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    timed_out: bool = False

    def to_dict(self) -> Dict:
        """JSON-ready representation (run records, ``--json`` output)."""
        return {
            "depth": self.depth,
            "decision": self.decision,
            "runtime": self.runtime,
            "timed_out": self.timed_out,
            "detail": dict(self.detail),
            "metrics": dict(self.metrics),
        }


@dataclass
class SynthesisResult:
    """Outcome of exact synthesis.

    ``status``:

    * ``"realized"`` — minimal circuits found; ``depth`` is minimal.
    * ``"timeout"`` — the time budget ran out before a decision.
    * ``"gate_limit"`` — every depth up to the limit is unrealizable.
    * ``"cancelled"`` — cooperatively cancelled mid-run (a portfolio
      loser or a drained Ctrl-C); the per-depth trajectory holds what
      completed before the cancellation.

    ``circuits`` holds every found realization (all of them for the BDD
    engine, a single one for the SAT/SWORD/QBF engines).  ``num_solutions``
    is the exact count of minimal networks when the engine knows it (BDD
    model counting), else the number of circuits returned.  ``metrics``
    aggregates the per-depth metrics over the whole run (counters are
    summed, gauges take their peak) plus the driver's own figures.

    ``incremental`` records whether the run reused engine state across
    the depth loop (warm-solver SAT/QBF sessions, the BDD engine's
    incremental cascade) as opposed to deciding every depth from
    scratch.  It changes the computation performed — not merely how it
    is scheduled — so it is *canonical*, not a volatile record field:
    serial and parallel runs of the same configuration agree on it.

    ``store_hit`` / ``store_resumed_from`` carry persistent-store
    provenance (:mod:`repro.store`): whether the result was served from
    the result store, and the ledger depth the deepening resumed after.
    Both describe cache luck, not the computation, so they are excluded
    from :meth:`to_dict` — the trace layer records them as volatile
    extras instead.

    ``engine_instance`` is populated only for ``keep_session=True``
    runs (the serve daemon's warm session pool): it hands the engine —
    with its deepening session still open — back to the caller for
    reuse.  It never appears in :meth:`to_dict`, records or the store.
    """

    engine: str
    spec_name: str
    status: str
    depth: Optional[int] = None
    circuits: List[Circuit] = field(default_factory=list)
    num_solutions: Optional[int] = None
    quantum_cost_min: Optional[int] = None
    quantum_cost_max: Optional[int] = None
    runtime: float = 0.0
    per_depth: List[DepthStat] = field(default_factory=list)
    solutions_truncated: bool = False
    metrics: Dict[str, float] = field(default_factory=dict)
    incremental: bool = False
    store_hit: bool = False
    store_resumed_from: Optional[int] = None
    engine_instance: Optional[object] = field(
        default=None, repr=False, compare=False)

    @property
    def realized(self) -> bool:
        return self.status == "realized"

    @property
    def circuit(self) -> Optional[Circuit]:
        """The cheapest found realization (by quantum cost, then order)."""
        if not self.circuits:
            return None
        return min(self.circuits, key=lambda c: c.quantum_cost())

    def to_dict(self) -> Dict:
        """JSON-ready representation — the body of a run record.

        Circuits themselves are summarized by count (serialize them via
        :func:`repro.core.export.to_json` when the gate lists matter).
        """
        return {
            "engine": self.engine,
            "spec_name": self.spec_name,
            "status": self.status,
            "depth": self.depth,
            "num_solutions": self.num_solutions,
            "num_circuits": len(self.circuits),
            "solutions_truncated": self.solutions_truncated,
            "quantum_cost_min": self.quantum_cost_min,
            "quantum_cost_max": self.quantum_cost_max,
            "runtime": self.runtime,
            "incremental": self.incremental,
            "per_depth": [step.to_dict() for step in self.per_depth],
            "metrics": dict(self.metrics),
        }

    def summary(self) -> str:
        if not self.realized:
            return (f"{self.spec_name} [{self.engine}]: {self.status} "
                    f"after {self.runtime:.2f}s")
        parts = [f"{self.spec_name} [{self.engine}]: D={self.depth}",
                 f"time={self.runtime:.2f}s"]
        if self.num_solutions is not None:
            parts.append(f"#SOL={self.num_solutions}")
        if self.quantum_cost_min is not None:
            if self.quantum_cost_min == self.quantum_cost_max:
                parts.append(f"QC={self.quantum_cost_min}")
            else:
                parts.append(f"QC={self.quantum_cost_min}..{self.quantum_cost_max}")
        return " ".join(parts)
