"""SAT-based exact synthesis — the baseline of [9] (GLSVLSI'06) / [22].

The depth-``d`` question is encoded as plain Boolean satisfiability:
the gate-select variables are shared, but the cascade constraints are
**duplicated for every truth-table row** — each care row gets its own
copy of the ``d`` universal-gate stages with the row's constant inputs
folded in.  The encoding therefore grows as ``Theta(2^n * d * q)``,
which is exactly the weakness (Section 3 of the paper) the QBF
formulation removes.  Instances are decided by the CDCL solver
(:mod:`repro.sat.cdcl`), the stand-in for MiniSat.
"""

from __future__ import annotations

from typing import List, Optional

import repro.obs as obs
from repro.core.cancel import CancelToken, as_token
from repro.core.circuit import Circuit
from repro.core.library import GateLibrary
from repro.core.spec import Specification
from repro.sat.cdcl import CdclSolver
from repro.sat.cnf import Cnf
from repro.sat.expr import ExprBuilder
from repro.synth.bdd_engine import DepthOutcome
from repro.synth.universal import ExprAlgebra, universal_gate_stage

__all__ = ["SatBaselineEngine"]


class SatBaselineEngine:
    """Per-truth-table-row SAT encoding plus CDCL solving.

    ``select_encoding`` chooses how the gate choice per cascade position
    is encoded: ``"binary"`` uses ``ceil(log2 q)`` select variables and
    the universal-gate construction; ``"onehot"`` uses one selector
    variable per gate with an exactly-one constraint — the encoding
    style of [9].  Ablation A5 compares the two.
    """

    name = "sat"

    def __init__(self, spec: Specification, library: GateLibrary,
                 select_encoding: str = "binary",
                 cancel_token: Optional[CancelToken] = None):
        if library.n_lines != spec.n_lines:
            raise ValueError("library and specification widths differ")
        if select_encoding not in ("binary", "onehot"):
            raise ValueError("select_encoding must be 'binary' or 'onehot'")
        self.cancel_token = as_token(cancel_token)
        self.spec = spec
        self.library = library
        self.select_encoding = select_encoding
        self.n = spec.n_lines
        self.width = library.select_bits()

    def encode(self, depth: int) -> "tuple[Cnf, List[List[int]]]":
        """Build the depth-``d`` instance; returns (CNF, select variables).

        Exposed separately so ablation A4 can measure encoding sizes
        without solving.
        """
        if self.select_encoding == "onehot":
            return self._encode_onehot(depth)
        cnf = Cnf()
        select_vars = [[cnf.new_var() for _ in range(self.width)]
                       for _ in range(depth)]
        builder = ExprBuilder(cnf)
        algebra = ExprAlgebra(builder)
        select_exprs = [[builder.var(v) for v in block] for block in select_vars]

        for row_input, row in enumerate(self.spec.rows):
            self.cancel_token.raise_if_cancelled()
            if all(value is None for value in row):
                continue  # row entirely outside the care domain
            lines = [builder.const(bool((row_input >> l) & 1))
                     for l in range(self.n)]
            for position in range(depth):
                lines = universal_gate_stage(lines, select_exprs[position],
                                             self.library, algebra)
            for l, value in enumerate(row):
                if value is None:
                    continue
                builder.assert_true(
                    builder.xnor(lines[l], builder.const(bool(value))))
        return cnf, select_vars

    def _encode_onehot(self, depth: int) -> "tuple[Cnf, List[List[int]]]":
        """One selector variable per (position, gate), exactly-one each."""
        cnf = Cnf()
        q = self.library.size()
        select_vars = [[cnf.new_var() for _ in range(q)] for _ in range(depth)]
        for block in select_vars:
            cnf.add_clause(block)  # at least one gate selected
            for i in range(q):
                for j in range(i + 1, q):
                    cnf.add_clause((-block[i], -block[j]))  # at most one
        builder = ExprBuilder(cnf)
        algebra = ExprAlgebra(builder)

        for row_input, row in enumerate(self.spec.rows):
            self.cancel_token.raise_if_cancelled()
            if all(value is None for value in row):
                continue
            lines = [builder.const(bool((row_input >> l) & 1))
                     for l in range(self.n)]
            for position in range(depth):
                deltas = [builder.false] * self.n
                for code, gate in enumerate(self.library):
                    selector = builder.var(select_vars[position][code])
                    for line, delta in gate.symbolic_deltas(lines, algebra).items():
                        contribution = builder.and_([selector, delta])
                        deltas[line] = builder.or_([deltas[line], contribution])
                lines = [builder.xor(lines[l], deltas[l])
                         for l in range(self.n)]
            for l, value in enumerate(row):
                if value is None:
                    continue
                builder.assert_true(
                    builder.xnor(lines[l], builder.const(bool(value))))
        return cnf, select_vars

    def decide(self, depth: int,
               time_limit: Optional[float] = None) -> DepthOutcome:
        with obs.span("sat.encode", depth=depth):
            cnf, select_vars = self.encode(depth)
        detail = {"vars": cnf.num_vars, "clauses": len(cnf.clauses)}
        with obs.span("sat.solve", depth=depth):
            result = CdclSolver(cnf).solve(
                time_limit=time_limit,
                tick=self.cancel_token.raise_if_cancelled)
        metrics = {
            "sat.vars": cnf.num_vars,
            "sat.clauses": len(cnf.clauses),
            "sat.conflicts": result.conflicts,
            "sat.decisions": result.decisions,
            "sat.propagations": result.propagations,
            "sat.restarts": result.restarts,
            "sat.learnt_clauses": result.learnt_clauses,
        }
        if result.status == "unknown":
            return DepthOutcome(status="unknown", metrics=metrics,
                                detail=dict(detail, timeout=True))
        if result.is_unsat:
            return DepthOutcome(status="unsat", detail=detail, metrics=metrics)
        assert result.model is not None
        circuit = self._decode(result.model, select_vars)
        if not self.spec.matches_circuit(circuit):
            raise AssertionError(
                "SAT engine produced a circuit violating the specification — "
                "encoding bug")
        cost = circuit.quantum_cost()
        return DepthOutcome(status="sat", circuits=[circuit],
                            num_solutions=None, quantum_cost_min=cost,
                            quantum_cost_max=cost, detail=detail,
                            metrics=metrics)

    def _decode(self, model, select_vars: List[List[int]]) -> Circuit:
        gates = []
        for block in select_vars:
            if self.select_encoding == "onehot":
                chosen = [k for k, var in enumerate(block) if model[var]]
                assert len(chosen) == 1, "exactly-one constraint violated"
                gates.append(self.library[chosen[0]])
                continue
            code = sum((1 << j) for j, var in enumerate(block) if model[var])
            if code < self.library.size():
                gates.append(self.library[code])
        return Circuit(self.n, gates)
