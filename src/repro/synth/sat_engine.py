"""SAT-based exact synthesis — the baseline of [9] (GLSVLSI'06) / [22].

The depth-``d`` question is encoded as plain Boolean satisfiability:
the gate-select variables are shared, but the cascade constraints are
**duplicated for every truth-table row** — each care row gets its own
copy of the ``d`` universal-gate stages with the row's constant inputs
folded in.  The encoding therefore grows as ``Theta(2^n * d * q)``,
which is exactly the weakness (Section 3 of the paper) the QBF
formulation removes.  Instances are decided by the CDCL solver
(:mod:`repro.sat.cdcl`), the stand-in for MiniSat.

Two solving modes exist.  The *scratch* mode re-encodes and cold-solves
every depth (the engine's historical behaviour, still what a bare
``decide()`` call does).  Inside a driver session
(:meth:`SatBaselineEngine.begin_session`) the engine switches to
*incremental* deepening: one warm :class:`~repro.sat.cdcl.CdclSolver`
holds a monotone encoding where the depth-``d`` output constraint is
guarded by an activation literal ``A_d``, so ``decide(d+1)`` pushes one
new universal-gate stage plus one guard into the live solver —
``solve(assumptions=[A_{d+1}])`` — instead of rebuilding
``Theta(2^n * d * q)`` clauses.  Learnt clauses, VSIDS activity and
saved phases all carry over across depths.

Model note: a warm solver's witness depends on solver history, so both
modes canonicalize the realizing model to the lexicographically
smallest gate-code sequence (:func:`repro.sat.incremental.lexmin_model`
over :func:`repro.synth.universal.canonical_select_order`) — the
incremental and scratch paths return *identical* circuits by
construction, which the incremental benchmark asserts.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import repro.obs as obs
from repro.core.cancel import CancelToken, as_token
from repro.core.circuit import Circuit
from repro.core.library import GateLibrary
from repro.core.spec import Specification
from repro.sat.cdcl import CdclSolver
from repro.sat.cnf import Cnf
from repro.sat.expr import ExprBuilder
from repro.sat.incremental import lexmin_model
from repro.synth.bdd_engine import DepthOutcome
from repro.synth.universal import (ExprAlgebra, canonical_select_order,
                                   universal_gate_stage)

__all__ = ["SatBaselineEngine"]


class SatBaselineEngine:
    """Per-truth-table-row SAT encoding plus CDCL solving.

    ``select_encoding`` chooses how the gate choice per cascade position
    is encoded: ``"binary"`` uses ``ceil(log2 q)`` select variables and
    the universal-gate construction; ``"onehot"`` uses one selector
    variable per gate with an exactly-one constraint — the encoding
    style of [9].  Ablation A5 compares the two.

    ``incremental`` (default on) enables the warm-solver deepening mode
    whenever the driver opens an engine session; a bare ``decide()``
    call outside any session always takes the scratch path.
    """

    name = "sat"

    def __init__(self, spec: Specification, library: GateLibrary,
                 select_encoding: str = "binary",
                 incremental: bool = True,
                 cancel_token: Optional[CancelToken] = None):
        if library.n_lines != spec.n_lines:
            raise ValueError("library and specification widths differ")
        if select_encoding not in ("binary", "onehot"):
            raise ValueError("select_encoding must be 'binary' or 'onehot'")
        self.cancel_token = as_token(cancel_token)
        self.spec = spec
        self.library = library
        self.select_encoding = select_encoding
        self.incremental = bool(incremental)
        self.n = spec.n_lines
        self.width = library.select_bits()
        self._session: Optional[_IncrementalSatSession] = None

    # -- engine session protocol -------------------------------------------------

    def begin_session(self) -> bool:
        """Driver hook: open the warm-solver deepening session.

        Returns whether an incremental session is now active (False when
        the engine was constructed with ``incremental=False``).
        """
        if self.incremental:
            self._session = _IncrementalSatSession(self)
        return self._session is not None

    @property
    def session_active(self) -> bool:
        """Whether a warm deepening session is currently open.

        The driver checks this before ``begin_session()`` so a pooled
        engine handed back via ``synthesize(warm_instance=...)`` resumes
        its hot solver instead of rebuilding the encoding from scratch.
        """
        return self._session is not None

    def end_session(self) -> None:
        """Driver hook: drop the warm solver and its encoding."""
        self._session = None

    def encode(self, depth: int) -> "tuple[Cnf, List[List[int]]]":
        """Build the depth-``d`` instance; returns (CNF, select variables).

        Exposed separately so ablation A4 can measure encoding sizes
        without solving.
        """
        if self.select_encoding == "onehot":
            return self._encode_onehot(depth)
        cnf = Cnf()
        select_vars = [[cnf.new_var() for _ in range(self.width)]
                       for _ in range(depth)]
        builder = ExprBuilder(cnf)
        algebra = ExprAlgebra(builder)
        select_exprs = [[builder.var(v) for v in block] for block in select_vars]

        for row_input, row in enumerate(self.spec.rows):
            self.cancel_token.raise_if_cancelled()
            if all(value is None for value in row):
                continue  # row entirely outside the care domain
            lines = [builder.const(bool((row_input >> l) & 1))
                     for l in range(self.n)]
            for position in range(depth):
                lines = universal_gate_stage(lines, select_exprs[position],
                                             self.library, algebra)
            for l, value in enumerate(row):
                if value is None:
                    continue
                builder.assert_true(
                    builder.xnor(lines[l], builder.const(bool(value))))
        return cnf, select_vars

    def _encode_onehot(self, depth: int) -> "tuple[Cnf, List[List[int]]]":
        """One selector variable per (position, gate), exactly-one each."""
        cnf = Cnf()
        q = self.library.size()
        select_vars = [[cnf.new_var() for _ in range(q)] for _ in range(depth)]
        for block in select_vars:
            cnf.add_clause(block)  # at least one gate selected
            for i in range(q):
                for j in range(i + 1, q):
                    cnf.add_clause((-block[i], -block[j]))  # at most one
        builder = ExprBuilder(cnf)
        algebra = ExprAlgebra(builder)

        for row_input, row in enumerate(self.spec.rows):
            self.cancel_token.raise_if_cancelled()
            if all(value is None for value in row):
                continue
            lines = [builder.const(bool((row_input >> l) & 1))
                     for l in range(self.n)]
            for position in range(depth):
                lines = _onehot_stage(lines, select_vars[position],
                                      self.library, builder, algebra)
            for l, value in enumerate(row):
                if value is None:
                    continue
                builder.assert_true(
                    builder.xnor(lines[l], builder.const(bool(value))))
        return cnf, select_vars

    def decide(self, depth: int,
               time_limit: Optional[float] = None) -> DepthOutcome:
        if self._session is not None:
            return self._session.decide(depth, time_limit)
        return self._decide_scratch(depth, time_limit)

    def _decide_scratch(self, depth: int,
                        time_limit: Optional[float] = None) -> DepthOutcome:
        with obs.span("sat.encode", depth=depth):
            cnf, select_vars = self.encode(depth)
        detail = {"vars": cnf.num_vars, "clauses": len(cnf.clauses),
                  "incremental": False}
        tick = self.cancel_token.raise_if_cancelled
        solver = CdclSolver(cnf)
        deadline = (None if time_limit is None
                    else time.perf_counter() + time_limit)
        with obs.span("sat.solve", depth=depth):
            result = solver.solve(time_limit=time_limit, tick=tick)
        metrics = {
            "sat.vars": cnf.num_vars,
            "sat.clauses": len(cnf.clauses),
            "sat.conflicts": result.conflicts,
            "sat.decisions": result.decisions,
            "sat.propagations": result.propagations,
            "sat.restarts": result.restarts,
            "sat.learnt_clauses": result.learnt_clauses,
            "sat.incremental.cold_conflicts": result.conflicts,
        }
        if result.status == "unknown":
            return DepthOutcome(status="unknown", metrics=metrics,
                                detail=dict(detail, timeout=True))
        if result.is_unsat:
            return DepthOutcome(status="unsat", detail=detail, metrics=metrics)
        assert result.model is not None
        with obs.span("sat.canonicalize", depth=depth):
            model, canon = lexmin_model(
                solver, canonical_select_order(select_vars), result.model,
                deadline=deadline, tick=tick)
        metrics["sat.canonical_solves"] = canon["solves"]
        metrics["sat.canonical_conflicts"] = canon["conflicts"]
        circuit = self._decode(model, select_vars)
        if not self.spec.matches_circuit(circuit):
            raise AssertionError(
                "SAT engine produced a circuit violating the specification — "
                "encoding bug")
        cost = circuit.quantum_cost()
        return DepthOutcome(status="sat", circuits=[circuit],
                            num_solutions=None, quantum_cost_min=cost,
                            quantum_cost_max=cost, detail=detail,
                            metrics=metrics)

    def _decode(self, model, select_vars: List[List[int]]) -> Circuit:
        gates = []
        for block in select_vars:
            if self.select_encoding == "onehot":
                chosen = [k for k, var in enumerate(block) if model[var]]
                assert len(chosen) == 1, "exactly-one constraint violated"
                gates.append(self.library[chosen[0]])
                continue
            code = sum((1 << j) for j, var in enumerate(block) if model[var])
            if code < self.library.size():
                gates.append(self.library[code])
        return Circuit(self.n, gates)


def _onehot_stage(lines, select_block, library: GateLibrary,
                  builder: ExprBuilder, algebra: ExprAlgebra):
    """One cascade stage under the one-hot selector encoding."""
    n = library.n_lines
    deltas = [builder.false] * n
    for code, gate in enumerate(library):
        selector = builder.var(select_block[code])
        for line, delta in gate.symbolic_deltas(lines, algebra).items():
            contribution = builder.and_([selector, delta])
            deltas[line] = builder.or_([deltas[line], contribution])
    return [builder.xor(lines[l], deltas[l]) for l in range(n)]


class _IncrementalSatSession:
    """Warm-solver state for one iterative-deepening run.

    The encoding is *monotone in depth*: universal-gate stages are only
    ever appended, the depth-``d`` output constraint lives behind guard
    literal ``A_d`` (clauses ``A_d -> line matches spec``), and a depth
    query is ``solve(assumptions=[A_d])``.  Restricted to the stage
    ``< d`` select variables, the model set under ``A_d`` equals the
    scratch depth-``d`` model set — trailing stages are unconstrained
    and dormant guards are free — so the per-depth sat/unsat answers
    match the scratch path exactly, and the lexmin canonicalization
    makes the extracted circuits match too.

    Depth queries need not be contiguous (the speculative pipeline's
    workers see gapped windows): missing stages are appended on demand
    and per-depth snapshots of the symbolic row lines allow building a
    guard for any already-built depth.
    """

    def __init__(self, engine: SatBaselineEngine):
        self.engine = engine
        self.cnf = Cnf()
        self.builder = ExprBuilder(self.cnf)
        self.algebra = ExprAlgebra(self.builder)
        self.solver = CdclSolver()
        self._synced = 0  # clause cursor into self.cnf.clauses
        self.select_blocks: List[List[int]] = []
        self.guards: Dict[int, int] = {}
        builder = self.builder
        self.care_rows = [
            (row_input, row)
            for row_input, row in enumerate(engine.spec.rows)
            if not all(value is None for value in row)
        ]
        # snapshots[d]: per care row, the symbolic line signals after d
        # stages; snapshot 0 is the row's constant inputs.
        self.snapshots: List[List[Tuple[int, list]]] = [[
            (row_input,
             [builder.const(bool((row_input >> l) & 1))
              for l in range(engine.n)])
            for row_input, _ in self.care_rows
        ]]

    # -- encoding growth ---------------------------------------------------------

    def _extend_to(self, depth: int) -> None:
        engine = self.engine
        while len(self.select_blocks) < depth:
            engine.cancel_token.raise_if_cancelled()
            if engine.select_encoding == "onehot":
                q = engine.library.size()
                block = [self.cnf.new_var() for _ in range(q)]
                self.cnf.add_clause(block)
                for i in range(q):
                    for j in range(i + 1, q):
                        self.cnf.add_clause((-block[i], -block[j]))
            else:
                block = [self.cnf.new_var() for _ in range(engine.width)]
                select_exprs = [self.builder.var(v) for v in block]
            self.select_blocks.append(block)
            new_snapshot: List[Tuple[int, list]] = []
            for row_input, lines in self.snapshots[-1]:
                engine.cancel_token.raise_if_cancelled()
                if engine.select_encoding == "onehot":
                    new_lines = _onehot_stage(lines, block, engine.library,
                                              self.builder, self.algebra)
                else:
                    new_lines = universal_gate_stage(
                        lines, select_exprs, engine.library, self.algebra)
                new_snapshot.append((row_input, new_lines))
            self.snapshots.append(new_snapshot)

    def _guard(self, depth: int) -> int:
        guard = self.guards.get(depth)
        if guard is not None:
            return guard
        engine = self.engine
        builder = self.builder
        guard = self.cnf.new_var()
        rows = {row_input: row for row_input, row in self.care_rows}
        for row_input, lines in self.snapshots[depth]:
            row = rows[row_input]
            for l, value in enumerate(row):
                if value is None:
                    continue
                term = builder.xnor(lines[l], builder.const(bool(value)))
                self.cnf.add_clause((-guard, builder.tseitin(term)))
        self.guards[depth] = guard
        return guard

    def _sync(self) -> int:
        """Push newly-encoded clauses into the live solver."""
        self.solver.ensure_vars(self.cnf.num_vars)
        clauses = self.cnf.clauses
        added = len(clauses) - self._synced
        while self._synced < len(clauses):
            self.solver.add_clause(clauses[self._synced])
            self._synced += 1
        return added

    # -- depth decision ----------------------------------------------------------

    def decide(self, depth: int,
               time_limit: Optional[float] = None) -> DepthOutcome:
        engine = self.engine
        tick = engine.cancel_token.raise_if_cancelled
        reused = self.solver.num_clauses + self.solver.num_learnts
        with obs.span("sat.encode", depth=depth, incremental=True):
            self._extend_to(depth)
            guard = self._guard(depth)
            added = self._sync()
        detail = {"vars": self.cnf.num_vars, "clauses": len(self.cnf.clauses),
                  "incremental": True}
        deadline = (None if time_limit is None
                    else time.perf_counter() + time_limit)
        with obs.span("sat.solve", depth=depth, incremental=True):
            result = self.solver.solve(time_limit=time_limit, tick=tick,
                                       assumptions=[guard])
        metrics = {
            "sat.vars": self.cnf.num_vars,
            "sat.clauses": len(self.cnf.clauses),
            "sat.conflicts": result.conflicts,
            "sat.decisions": result.decisions,
            "sat.propagations": result.propagations,
            "sat.restarts": result.restarts,
            "sat.learnt_clauses": result.learnt_clauses,
            "sat.incremental.clauses_reused": reused,
            "sat.incremental.clauses_added": added,
            "sat.incremental.assumptions": 1,
            "sat.incremental.warm_conflicts": result.conflicts,
        }
        if result.status == "unknown":
            return DepthOutcome(status="unknown", metrics=metrics,
                                detail=dict(detail, timeout=True))
        if result.is_unsat:
            return DepthOutcome(status="unsat", detail=detail, metrics=metrics)
        assert result.model is not None
        select_vars = self.select_blocks[:depth]
        with obs.span("sat.canonicalize", depth=depth):
            model, canon = lexmin_model(
                self.solver, canonical_select_order(select_vars),
                result.model, assumptions=[guard], deadline=deadline,
                tick=tick)
        metrics["sat.canonical_solves"] = canon["solves"]
        metrics["sat.canonical_conflicts"] = canon["conflicts"]
        circuit = engine._decode(model, select_vars)
        if not engine.spec.matches_circuit(circuit):
            raise AssertionError(
                "SAT engine produced a circuit violating the specification — "
                "encoding bug")
        cost = circuit.quantum_cost()
        return DepthOutcome(status="sat", circuits=[circuit],
                            num_solutions=None, quantum_cost_min=cost,
                            quantum_cost_max=cost, detail=detail,
                            metrics=metrics)
