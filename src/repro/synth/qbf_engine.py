"""QBF-solver-based synthesis — Sections 4 and 5.1 of the paper.

The cascade of universal gates is encoded **once** (polynomial size) over
symbolic inputs ``X``; meeting the specification is enforced by
quantification:

    exists Y_1 .. Y_d  forall x_1 .. x_n  exists A .
        CNF( AND_l ( f_l^dc OR (F_{d,l} XNOR f_l^on) ) )

``A`` are the Tseitin auxiliaries introduced when flattening the formula
to clauses [20].  The specification itself is encoded via its BDD
(Shannon expansion to an expression DAG), keeping the whole instance
polynomial in the BDD size rather than ``2^n`` truth-table rows.

Two solvers are available.  The default, ``solver="expansion"``, follows
skizzo's symbolic-skolemization lineage: universal variables are expanded
away and one CDCL call decides the result.  ``solver="qdpll"`` is the
search-based alternative; without clause/cube learning it blows up
exponentially per depth and is only practical on tiny instances —
ablation A2 quantifies the difference.  Either way the paper's finding
holds: the QBF-solver route is far slower than the BDD engine.

Inside a driver session the expansion solver runs *incrementally*: the
polynomial matrix is encoded once (monotone in depth, with the depth-
``d`` spec constraint behind a guard literal), and universal expansion
is performed as row-cofactoring into one warm CDCL solver — the matrix
copy for input row ``r`` substitutes the ``X`` literals by ``r``'s bits
and renames the inner Tseitin auxiliaries through a per-row copy map,
while the outer gate-select and guard variables stay shared.  A depth
query then reuses every clause, learnt clause and phase from the
previous depths instead of re-expanding and cold-solving.  Realizing
models are canonicalized to the lexicographically smallest gate-code
sequence in both modes, so warm and scratch runs return identical
circuits.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import repro.obs as obs
from repro.bdd.manager import BddManager
from repro.core.cancel import CancelToken, as_token
from repro.core.circuit import Circuit
from repro.core.library import GateLibrary
from repro.core.spec import Specification
from repro.qbf.expansion import ExpansionBudgetExceeded, expand_to_cnf
from repro.qbf.qcnf import EXISTS, FORALL, QuantifiedCnf
from repro.qbf.qdpll import QdpllSolver
from repro.sat.cdcl import CdclSolver
from repro.sat.cnf import Cnf
from repro.sat.dimacs import to_qdimacs
from repro.sat.expr import ExprBuilder, expr_from_bdd
from repro.sat.incremental import lexmin_model
from repro.synth.bdd_engine import DepthOutcome
from repro.synth.universal import (ExprAlgebra, canonical_select_order,
                                   universal_gate_stage)

__all__ = ["QbfSolverEngine"]


class QbfSolverEngine:
    """Polynomial QCNF encoding decided by a QBF solver."""

    name = "qbf"

    def __init__(self, spec: Specification, library: GateLibrary,
                 solver: str = "expansion",
                 expansion_clause_budget: Optional[int] = None,
                 incremental: bool = True,
                 cancel_token: Optional[CancelToken] = None):
        if library.n_lines != spec.n_lines:
            raise ValueError("library and specification widths differ")
        if solver not in ("qdpll", "expansion"):
            raise ValueError("solver must be 'qdpll' or 'expansion'")
        self.cancel_token = as_token(cancel_token)
        self.spec = spec
        self.library = library
        self.solver = solver
        self.expansion_clause_budget = expansion_clause_budget
        self.incremental = bool(incremental)
        self.n = spec.n_lines
        self.width = library.select_bits()
        self._session: Optional[_IncrementalExpansionSession] = None

    # -- engine session protocol -------------------------------------------------

    def begin_session(self) -> bool:
        """Driver hook: open the warm row-expansion session.

        Only the expansion solver supports incremental deepening; the
        qdpll backend keeps its per-depth search.  Returns whether an
        incremental session is now active.
        """
        if self.incremental and self.solver == "expansion":
            self._session = _IncrementalExpansionSession(self)
        return self._session is not None

    @property
    def session_active(self) -> bool:
        """Whether a warm deepening session is currently open.

        Checked by the driver before ``begin_session()`` so a pooled
        engine (``synthesize(warm_instance=...)``) resumes its hot
        expansion solver instead of rebuilding it.
        """
        return self._session is not None

    def end_session(self) -> None:
        """Driver hook: drop the warm solver and its expansion maps."""
        self._session = None

    # -- encoding ---------------------------------------------------------------

    def encode(self, depth: int) -> Tuple[QuantifiedCnf, List[List[int]]]:
        """Build the prenex QCNF instance; returns (formula, select vars)."""
        cnf = Cnf()
        select_vars = [[cnf.new_var() for _ in range(self.width)]
                       for _ in range(depth)]
        x_vars = [cnf.new_var() for _ in range(self.n)]
        builder = ExprBuilder(cnf)
        algebra = ExprAlgebra(builder)

        lines = [builder.var(v) for v in x_vars]
        select_exprs = [[builder.var(v) for v in block] for block in select_vars]
        for position in range(depth):
            lines = universal_gate_stage(lines, select_exprs[position],
                                         self.library, algebra)

        # Specification as expressions, via its per-output BDDs: the CNF
        # stays linear in the BDD sizes instead of 2^n rows.
        spec_manager = BddManager(self.n,
                                  var_names=[f"x{l}" for l in range(self.n)])
        bdd_x = list(range(self.n))
        var_to_expr = {l: builder.var(x_vars[l]) for l in range(self.n)}
        terms = []
        for l in range(self.n):
            self.cancel_token.raise_if_cancelled()
            on_bdd = spec_manager.from_minterms(bdd_x, self.spec.on_set(l))
            dc_bdd = spec_manager.from_minterms(bdd_x, self.spec.dc_set(l))
            on_expr = expr_from_bdd(spec_manager, on_bdd, var_to_expr, builder)
            dc_expr = expr_from_bdd(spec_manager, dc_bdd, var_to_expr, builder)
            terms.append(builder.or_([dc_expr,
                                      builder.xnor(lines[l], on_expr)]))
        builder.assert_true(builder.and_(terms))

        flat_select = [v for block in select_vars for v in block]
        auxiliaries = [v for v in range(1, cnf.num_vars + 1)
                       if v not in set(flat_select) and v not in set(x_vars)]
        prefix = []
        if flat_select:
            prefix.append((EXISTS, flat_select))
        prefix.append((FORALL, x_vars))
        if auxiliaries:
            prefix.append((EXISTS, auxiliaries))
        return QuantifiedCnf(prefix, cnf), select_vars

    def export_qdimacs(self, depth: int) -> str:
        """The depth-``d`` instance in QDIMACS, for external QBF solvers."""
        formula, _ = self.encode(depth)
        return to_qdimacs(formula.prefix, formula.cnf,
                          comments=[f"quantified synthesis of "
                                    f"{self.spec.name or 'anonymous'} depth {depth}",
                                    f"library {self.library.name}"])

    # -- solving -------------------------------------------------------------------

    def decide(self, depth: int,
               time_limit: Optional[float] = None) -> DepthOutcome:
        if self._session is not None:
            return self._session.decide(depth, time_limit)
        with obs.span("qbf.encode", depth=depth):
            formula, select_vars = self.encode(depth)
        detail = {"vars": formula.cnf.num_vars,
                  "clauses": len(formula.cnf.clauses),
                  "incremental": False}
        tick = self.cancel_token.raise_if_cancelled
        if self.solver == "qdpll":
            with obs.span("qbf.solve", depth=depth, solver=self.solver):
                result = QdpllSolver(formula).solve(time_limit=time_limit,
                                                   tick=tick)
            metrics = {
                "qbf.vars": formula.cnf.num_vars,
                "qbf.clauses": len(formula.cnf.clauses),
                "qbf.decisions": result.decisions,
                "qbf.propagations": result.propagations,
                "qbf.conflicts": result.conflicts,
                "qbf.expanded_universals": result.expanded_universals,
                "qbf.expanded_clauses": result.expanded_clauses,
            }
            if result.status == "unknown":
                return DepthOutcome(status="unknown", metrics=metrics,
                                    detail=dict(detail, timeout=True))
            if result.is_unsat:
                return DepthOutcome(status="unsat", detail=detail,
                                    metrics=metrics)
            assert result.model is not None
            return self._realized(result.model, select_vars, detail, metrics)
        return self._decide_expansion_scratch(formula, select_vars, detail,
                                              depth, time_limit)

    def _decide_expansion_scratch(self, formula: QuantifiedCnf,
                                  select_vars: List[List[int]],
                                  detail: Dict[str, object], depth: int,
                                  time_limit: Optional[float]
                                  ) -> DepthOutcome:
        """Cold expansion path: expand, one CDCL call, canonicalize.

        Inlined (rather than routed through
        :func:`~repro.qbf.expansion.solve_qbf_by_expansion`) so the
        realizing model can be lexmin-canonicalized on the live solver —
        the guarantee that scratch and incremental runs return the same
        circuit needs both paths to extract the same canonical witness.
        """
        tick = self.cancel_token.raise_if_cancelled
        universals = sum(len(variables)
                         for quantifier, variables in formula.prefix
                         if quantifier == FORALL)
        metrics = {
            "qbf.vars": formula.cnf.num_vars,
            "qbf.clauses": len(formula.cnf.clauses),
            "qbf.expanded_universals": universals,
        }
        with obs.span("qbf.expand", depth=depth):
            try:
                cnf, _outer = expand_to_cnf(
                    formula, max_clauses=self.expansion_clause_budget,
                    tick=tick)
            except ExpansionBudgetExceeded:
                return DepthOutcome(status="unknown", metrics=metrics,
                                    detail=dict(detail,
                                                budget_exceeded=True))
        metrics["qbf.expanded_clauses"] = len(cnf.clauses)
        solver = CdclSolver(cnf)
        deadline = (None if time_limit is None
                    else time.perf_counter() + time_limit)
        with obs.span("qbf.solve", depth=depth, solver=self.solver):
            result = solver.solve(time_limit=time_limit, tick=tick)
        metrics.update({
            "qbf.decisions": result.decisions,
            "qbf.propagations": result.propagations,
            "qbf.conflicts": result.conflicts,
            "sat.incremental.cold_conflicts": result.conflicts,
        })
        if result.status == "unknown":
            return DepthOutcome(status="unknown", metrics=metrics,
                                detail=dict(detail, timeout=True))
        if result.is_unsat:
            return DepthOutcome(status="unsat", detail=detail, metrics=metrics)
        assert result.model is not None
        with obs.span("qbf.canonicalize", depth=depth):
            model, canon = lexmin_model(
                solver, canonical_select_order(select_vars), result.model,
                deadline=deadline, tick=tick)
        metrics["sat.canonical_solves"] = canon["solves"]
        metrics["sat.canonical_conflicts"] = canon["conflicts"]
        return self._realized(model, select_vars, detail, metrics)

    def _realized(self, model: Dict[int, bool],
                  select_vars: List[List[int]], detail: Dict[str, object],
                  metrics: Dict[str, float]) -> DepthOutcome:
        circuit = self._decode(model, select_vars)
        if not self.spec.matches_circuit(circuit):
            raise AssertionError(
                "QBF engine produced a circuit violating the specification — "
                "encoding bug")
        cost = circuit.quantum_cost()
        return DepthOutcome(status="sat", circuits=[circuit],
                            quantum_cost_min=cost, quantum_cost_max=cost,
                            detail=detail, metrics=metrics)

    def _decode(self, model: Dict[int, bool],
                select_vars: List[List[int]]) -> Circuit:
        gates = []
        for block in select_vars:
            code = sum((1 << j) for j, var in enumerate(block) if model[var])
            if code < self.library.size():
                gates.append(self.library[code])
        return Circuit(self.n, gates)


class _IncrementalExpansionSession:
    """Warm row-expansion state for one iterative-deepening run.

    Template side: a growing CNF over the symbolic inputs ``X``, the
    per-stage select variables and the Tseitin auxiliaries — exactly the
    matrix :meth:`QbfSolverEngine.encode` would build, but monotone in
    depth and with each depth's spec constraint behind a guard literal.

    Solver side: full universal expansion realized incrementally as row
    cofactoring.  Every template clause is copied once per input row
    ``r``: ``X`` literals are substituted by ``r``'s bits (satisfied
    copies dropped, false literals removed), inner auxiliary variables
    are renamed through a per-row copy map, and the outer select/guard
    variables map to one shared solver variable each.  This is the same
    formula :func:`~repro.qbf.expansion.expand_to_cnf` produces, built
    clause-by-clause into a live :class:`~repro.sat.cdcl.CdclSolver`
    instead of re-expanded from scratch per depth, so the inner SAT
    calls keep their learnt clauses, activity and phases across the
    whole Figure-1 loop.
    """

    def __init__(self, engine: QbfSolverEngine):
        self.engine = engine
        self.cnf = Cnf()
        self.builder = ExprBuilder(self.cnf)
        self.algebra = ExprAlgebra(self.builder)
        self.solver = CdclSolver()
        self._synced = 0  # clause cursor into the template CNF
        n = engine.n
        builder = self.builder
        self.x_vars = [self.cnf.new_var() for _ in range(n)]
        self.x_index = {var: l for l, var in enumerate(self.x_vars)}
        #: outer (select/guard) template var -> shared solver var
        self.outer_map: Dict[int, int] = {}
        #: per input row: inner template var -> that row's solver copy
        self.row_maps: List[Dict[int, int]] = [{} for _ in range(1 << n)]
        self.select_blocks_t: List[List[int]] = []
        self.select_blocks_s: List[List[int]] = []
        self.guards: Dict[int, int] = {}
        # Symbolic line snapshots per depth (snapshot 0: the raw inputs).
        self.snapshots: List[list] = [[builder.var(v) for v in self.x_vars]]
        # Specification expressions over X, via its per-output BDDs —
        # computed once, shared by every depth's guard.
        spec_manager = BddManager(n, var_names=[f"x{l}" for l in range(n)])
        bdd_x = list(range(n))
        var_to_expr = {l: builder.var(self.x_vars[l]) for l in range(n)}
        self.on_exprs = []
        self.dc_exprs = []
        for l in range(n):
            engine.cancel_token.raise_if_cancelled()
            on_bdd = spec_manager.from_minterms(bdd_x, engine.spec.on_set(l))
            dc_bdd = spec_manager.from_minterms(bdd_x, engine.spec.dc_set(l))
            self.on_exprs.append(
                expr_from_bdd(spec_manager, on_bdd, var_to_expr, builder))
            self.dc_exprs.append(
                expr_from_bdd(spec_manager, dc_bdd, var_to_expr, builder))

    # -- encoding growth ---------------------------------------------------------

    def _outer_var(self, template_var: int) -> int:
        solver_var = self.outer_map.get(template_var)
        if solver_var is None:
            solver_var = self.solver.new_var()
            self.outer_map[template_var] = solver_var
        return solver_var

    def _extend_to(self, depth: int) -> None:
        engine = self.engine
        while len(self.select_blocks_t) < depth:
            engine.cancel_token.raise_if_cancelled()
            block = [self.cnf.new_var() for _ in range(engine.width)]
            self.select_blocks_t.append(block)
            self.select_blocks_s.append([self._outer_var(v) for v in block])
            select_exprs = [self.builder.var(v) for v in block]
            self.snapshots.append(universal_gate_stage(
                self.snapshots[-1], select_exprs, engine.library,
                self.algebra))

    def _guard(self, depth: int) -> int:
        guard = self.guards.get(depth)
        if guard is not None:
            return guard
        builder = self.builder
        guard = self.cnf.new_var()
        self._outer_var(guard)
        lines = self.snapshots[depth]
        terms = [builder.or_([self.dc_exprs[l],
                              builder.xnor(lines[l], self.on_exprs[l])])
                 for l in range(self.engine.n)]
        self.cnf.add_clause((-guard, builder.tseitin(builder.and_(terms))))
        self.guards[depth] = guard
        return guard

    def _sync(self) -> int:
        """Row-cofactor the newly-encoded template clauses into the solver."""
        added = 0
        clauses = self.cnf.clauses
        while self._synced < len(clauses):
            clause = clauses[self._synced]
            self._synced += 1
            for row, row_map in enumerate(self.row_maps):
                copy: List[int] = []
                satisfied = False
                for lit in clause:
                    var = abs(lit)
                    line = self.x_index.get(var)
                    if line is not None:
                        bit = bool((row >> line) & 1)
                        if (lit > 0) == bit:
                            satisfied = True
                            break
                        continue  # false under this row: literal drops
                    solver_var = self.outer_map.get(var)
                    if solver_var is None:
                        solver_var = row_map.get(var)
                        if solver_var is None:
                            solver_var = self.solver.new_var()
                            row_map[var] = solver_var
                    copy.append(solver_var if lit > 0 else -solver_var)
                if satisfied:
                    continue
                self.solver.add_clause(copy)
                added += 1
        return added

    # -- depth decision ----------------------------------------------------------

    def decide(self, depth: int,
               time_limit: Optional[float] = None) -> DepthOutcome:
        engine = self.engine
        tick = engine.cancel_token.raise_if_cancelled
        reused = self.solver.num_clauses + self.solver.num_learnts
        with obs.span("qbf.encode", depth=depth, incremental=True):
            self._extend_to(depth)
            guard = self._guard(depth)
        with obs.span("qbf.expand", depth=depth, incremental=True):
            added = self._sync()
        detail = {"vars": self.cnf.num_vars,
                  "clauses": len(self.cnf.clauses),
                  "incremental": True}
        metrics = {
            "qbf.vars": self.cnf.num_vars,
            "qbf.clauses": len(self.cnf.clauses),
            "qbf.expanded_universals": engine.n,
            "qbf.expanded_clauses": self.solver.num_clauses,
            "sat.incremental.clauses_reused": reused,
            "sat.incremental.clauses_added": added,
            "sat.incremental.assumptions": 1,
        }
        budget = engine.expansion_clause_budget
        if budget is not None and self.solver.num_clauses > budget:
            return DepthOutcome(status="unknown", metrics=metrics,
                                detail=dict(detail, budget_exceeded=True))
        deadline = (None if time_limit is None
                    else time.perf_counter() + time_limit)
        guard_lit = self.outer_map[guard]
        with obs.span("qbf.solve", depth=depth, solver="expansion",
                      incremental=True):
            result = self.solver.solve(time_limit=time_limit, tick=tick,
                                       assumptions=[guard_lit])
        metrics.update({
            "qbf.decisions": result.decisions,
            "qbf.propagations": result.propagations,
            "qbf.conflicts": result.conflicts,
            "sat.incremental.warm_conflicts": result.conflicts,
        })
        if result.status == "unknown":
            return DepthOutcome(status="unknown", metrics=metrics,
                                detail=dict(detail, timeout=True))
        if result.is_unsat:
            return DepthOutcome(status="unsat", detail=detail, metrics=metrics)
        assert result.model is not None
        select_vars = self.select_blocks_s[:depth]
        with obs.span("qbf.canonicalize", depth=depth):
            model, canon = lexmin_model(
                self.solver, canonical_select_order(select_vars),
                result.model, assumptions=[guard_lit], deadline=deadline,
                tick=tick)
        metrics["sat.canonical_solves"] = canon["solves"]
        metrics["sat.canonical_conflicts"] = canon["conflicts"]
        return engine._realized(model, select_vars, detail, metrics)
