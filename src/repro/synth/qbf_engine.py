"""QBF-solver-based synthesis — Sections 4 and 5.1 of the paper.

The cascade of universal gates is encoded **once** (polynomial size) over
symbolic inputs ``X``; meeting the specification is enforced by
quantification:

    exists Y_1 .. Y_d  forall x_1 .. x_n  exists A .
        CNF( AND_l ( f_l^dc OR (F_{d,l} XNOR f_l^on) ) )

``A`` are the Tseitin auxiliaries introduced when flattening the formula
to clauses [20].  The specification itself is encoded via its BDD
(Shannon expansion to an expression DAG), keeping the whole instance
polynomial in the BDD size rather than ``2^n`` truth-table rows.

Two solvers are available.  The default, ``solver="expansion"``, follows
skizzo's symbolic-skolemization lineage: universal variables are expanded
away and one CDCL call decides the result.  ``solver="qdpll"`` is the
search-based alternative; without clause/cube learning it blows up
exponentially per depth and is only practical on tiny instances —
ablation A2 quantifies the difference.  Either way the paper's finding
holds: the QBF-solver route is far slower than the BDD engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import repro.obs as obs
from repro.bdd.manager import BddManager
from repro.core.cancel import CancelToken, as_token
from repro.core.circuit import Circuit
from repro.core.library import GateLibrary
from repro.core.spec import Specification
from repro.qbf.expansion import solve_qbf_by_expansion
from repro.qbf.qcnf import EXISTS, FORALL, QuantifiedCnf
from repro.qbf.qdpll import QdpllSolver
from repro.sat.cnf import Cnf
from repro.sat.dimacs import to_qdimacs
from repro.sat.expr import ExprBuilder, expr_from_bdd
from repro.synth.bdd_engine import DepthOutcome
from repro.synth.universal import ExprAlgebra, universal_gate_stage

__all__ = ["QbfSolverEngine"]


class QbfSolverEngine:
    """Polynomial QCNF encoding decided by a QBF solver."""

    name = "qbf"

    def __init__(self, spec: Specification, library: GateLibrary,
                 solver: str = "expansion",
                 expansion_clause_budget: Optional[int] = None,
                 cancel_token: Optional[CancelToken] = None):
        if library.n_lines != spec.n_lines:
            raise ValueError("library and specification widths differ")
        if solver not in ("qdpll", "expansion"):
            raise ValueError("solver must be 'qdpll' or 'expansion'")
        self.cancel_token = as_token(cancel_token)
        self.spec = spec
        self.library = library
        self.solver = solver
        self.expansion_clause_budget = expansion_clause_budget
        self.n = spec.n_lines
        self.width = library.select_bits()

    # -- encoding ---------------------------------------------------------------

    def encode(self, depth: int) -> Tuple[QuantifiedCnf, List[List[int]]]:
        """Build the prenex QCNF instance; returns (formula, select vars)."""
        cnf = Cnf()
        select_vars = [[cnf.new_var() for _ in range(self.width)]
                       for _ in range(depth)]
        x_vars = [cnf.new_var() for _ in range(self.n)]
        builder = ExprBuilder(cnf)
        algebra = ExprAlgebra(builder)

        lines = [builder.var(v) for v in x_vars]
        select_exprs = [[builder.var(v) for v in block] for block in select_vars]
        for position in range(depth):
            lines = universal_gate_stage(lines, select_exprs[position],
                                         self.library, algebra)

        # Specification as expressions, via its per-output BDDs: the CNF
        # stays linear in the BDD sizes instead of 2^n rows.
        spec_manager = BddManager(self.n,
                                  var_names=[f"x{l}" for l in range(self.n)])
        bdd_x = list(range(self.n))
        var_to_expr = {l: builder.var(x_vars[l]) for l in range(self.n)}
        terms = []
        for l in range(self.n):
            self.cancel_token.raise_if_cancelled()
            on_bdd = spec_manager.from_minterms(bdd_x, self.spec.on_set(l))
            dc_bdd = spec_manager.from_minterms(bdd_x, self.spec.dc_set(l))
            on_expr = expr_from_bdd(spec_manager, on_bdd, var_to_expr, builder)
            dc_expr = expr_from_bdd(spec_manager, dc_bdd, var_to_expr, builder)
            terms.append(builder.or_([dc_expr,
                                      builder.xnor(lines[l], on_expr)]))
        builder.assert_true(builder.and_(terms))

        flat_select = [v for block in select_vars for v in block]
        auxiliaries = [v for v in range(1, cnf.num_vars + 1)
                       if v not in set(flat_select) and v not in set(x_vars)]
        prefix = []
        if flat_select:
            prefix.append((EXISTS, flat_select))
        prefix.append((FORALL, x_vars))
        if auxiliaries:
            prefix.append((EXISTS, auxiliaries))
        return QuantifiedCnf(prefix, cnf), select_vars

    def export_qdimacs(self, depth: int) -> str:
        """The depth-``d`` instance in QDIMACS, for external QBF solvers."""
        formula, _ = self.encode(depth)
        return to_qdimacs(formula.prefix, formula.cnf,
                          comments=[f"quantified synthesis of "
                                    f"{self.spec.name or 'anonymous'} depth {depth}",
                                    f"library {self.library.name}"])

    # -- solving -------------------------------------------------------------------

    def decide(self, depth: int,
               time_limit: Optional[float] = None) -> DepthOutcome:
        with obs.span("qbf.encode", depth=depth):
            formula, select_vars = self.encode(depth)
        detail = {"vars": formula.cnf.num_vars,
                  "clauses": len(formula.cnf.clauses)}
        with obs.span("qbf.solve", depth=depth, solver=self.solver):
            tick = self.cancel_token.raise_if_cancelled
            if self.solver == "qdpll":
                result = QdpllSolver(formula).solve(time_limit=time_limit,
                                                    tick=tick)
            else:
                result = solve_qbf_by_expansion(
                    formula, time_limit=time_limit,
                    max_clauses=self.expansion_clause_budget, tick=tick)
        metrics = {
            "qbf.vars": formula.cnf.num_vars,
            "qbf.clauses": len(formula.cnf.clauses),
            "qbf.decisions": result.decisions,
            "qbf.propagations": result.propagations,
            "qbf.conflicts": result.conflicts,
            "qbf.expanded_universals": result.expanded_universals,
            "qbf.expanded_clauses": result.expanded_clauses,
        }
        if result.status == "unknown":
            return DepthOutcome(status="unknown", metrics=metrics,
                                detail=dict(detail, timeout=True))
        if result.is_unsat:
            return DepthOutcome(status="unsat", detail=detail, metrics=metrics)
        assert result.model is not None
        circuit = self._decode(result.model, select_vars)
        if not self.spec.matches_circuit(circuit):
            raise AssertionError(
                "QBF engine produced a circuit violating the specification — "
                "encoding bug")
        cost = circuit.quantum_cost()
        return DepthOutcome(status="sat", circuits=[circuit],
                            quantum_cost_min=cost, quantum_cost_max=cost,
                            detail=detail, metrics=metrics)

    def _decode(self, model: Dict[int, bool],
                select_vars: List[List[int]]) -> Circuit:
        gates = []
        for block in select_vars:
            code = sum((1 << j) for j, var in enumerate(block) if model[var])
            if code < self.library.size():
                gates.append(self.library[code])
        return Circuit(self.n, gates)
