"""Exact synthesis with output permutation (the follow-up extension).

Wille/Große/Dueck/Drechsler's companion paper ("Reversible Logic
Synthesis with Output Permutation") observes that in many applications
the assignment of function outputs to circuit lines is free: a network
realizing any *line-permuted* version of the specification is equally
useful, and the freedom often buys a smaller minimal gate count.

The BDD formulation makes this nearly free to support: the equality
check of Section 5.2 becomes

    OR_pi  AND_l ( f_{pi(l)}^dc OR (F_{d,l} XNOR f_{pi(l)}^on) )

over the output permutations ``pi``.  The per-line agreement BDDs
``agree[l][m] = dc_m OR (F_{d,l} XNOR on_m)`` are shared across the
``n!`` conjunctions, so the extra work per depth is ``n^2`` BDD
operations plus cheap ANDs — and the engine still recovers *all*
minimal networks, now per winning permutation.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import FALSE
from repro.core.library import GateLibrary
from repro.core.spec import Specification
from repro.synth.bdd_engine import BddSynthesisEngine, _Deadline
from repro.synth.driver import default_gate_limit
from repro.synth.result import DepthStat

__all__ = ["OutputPermutationResult", "synthesize_with_output_permutation"]


@dataclass
class OutputPermutationResult:
    """Outcome of output-permutation synthesis.

    ``realizations`` maps each winning output permutation (a tuple
    ``pi`` meaning circuit line ``l`` carries specification output
    ``pi[l]``) to the list of minimal circuits realizing it.
    """

    spec_name: str
    status: str  # "realized", "timeout" or "gate_limit"
    depth: Optional[int] = None
    #: minimal depth with the identity permutation, when it falls within
    #: the explored range (i.e. when relabeling buys nothing); None when
    #: the permuted search succeeded strictly earlier.
    fixed_depth: Optional[int] = None
    realizations: Dict[Tuple[int, ...], List] = field(default_factory=dict)
    num_solutions: int = 0
    quantum_cost_min: Optional[int] = None
    runtime: float = 0.0
    per_depth: List[DepthStat] = field(default_factory=list)

    @property
    def realized(self) -> bool:
        return self.status == "realized"

    @property
    def best_permutation(self) -> Optional[Tuple[int, ...]]:
        best = None
        best_cost = None
        for permutation, circuits in self.realizations.items():
            for circuit in circuits:
                cost = circuit.quantum_cost()
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best = permutation
        return best


def _permuted_matches(spec: Specification, circuit,
                      permutation: Sequence[int]) -> bool:
    """Does the circuit realize the spec with outputs permuted by pi?"""
    for i, row in enumerate(spec.rows):
        if all(v is None for v in row):
            continue
        out = circuit.simulate(i)
        for line in range(spec.n_lines):
            required = row[permutation[line]]
            if required is not None and ((out >> line) & 1) != required:
                return False
    return True


def synthesize_with_output_permutation(
    spec: Specification,
    library: Optional[GateLibrary] = None,
    kinds: Sequence[str] = ("mct",),
    max_gates: Optional[int] = None,
    time_limit: Optional[float] = None,
    max_enumerate: int = 10_000,
) -> OutputPermutationResult:
    """Minimal gate count over all output permutations (BDD engine).

    Returns every winning permutation with its minimal networks, plus
    the fixed-output minimal depth for comparison (computed from the
    same cascade, so the overhead is small).
    """
    if library is None:
        library = GateLibrary.from_kinds(spec.n_lines, kinds)
    engine = BddSynthesisEngine(spec, library, compact_between_depths=False)
    n = spec.n_lines
    manager = engine.manager
    limit = max_gates if max_gates is not None else default_gate_limit(n)
    identity = tuple(range(n))

    result = OutputPermutationResult(spec_name=spec.name or "anonymous",
                                     status="gate_limit")
    start = time.perf_counter()
    deadline = _Deadline(time_limit, manager=manager)

    try:
        for depth in range(limit + 1):
            step_start = time.perf_counter()
            engine._advance_to(depth, deadline)
            # Shared per-line agreement BDDs: line l carrying output m.
            agree = [[manager.or_(engine.dc_bdds[m],
                                  manager.xnor(engine.lines[l],
                                               engine.on_bdds[m]))
                      for m in range(n)] for l in range(n)]
            deadline.check()
            winning: Dict[Tuple[int, ...], int] = {}
            for permutation in itertools.permutations(range(n)):
                equality = manager.conj(agree[l][permutation[l]]
                                        for l in range(n))
                solutions = manager.forall(equality, engine.x_vars)
                if solutions != FALSE:
                    winning[permutation] = solutions
                deadline.check()
            decision = "sat" if winning else "unsat"
            result.per_depth.append(DepthStat(
                depth=depth, decision=decision,
                runtime=time.perf_counter() - step_start))
            if result.fixed_depth is None and identity in winning:
                result.fixed_depth = depth
            if not winning:
                continue
            # Extract circuits per winning permutation.
            result.status = "realized"
            result.depth = depth
            all_select = [v for block in engine.y_vars for v in block]
            for permutation, solutions in winning.items():
                circuits = []
                if all_select:
                    for model in manager.iter_models(solutions, all_select):
                        circuits.append(engine._decode(model, engine.y_vars))
                        if len(circuits) >= max_enumerate:
                            break
                else:
                    from repro.core.circuit import Circuit
                    circuits.append(Circuit(n))
                for circuit in circuits:
                    if not _permuted_matches(spec, circuit, permutation):
                        raise AssertionError(
                            "output-permutation synthesis produced a wrong "
                            "circuit — encoding bug")
                result.realizations[permutation] = circuits
                result.num_solutions += len(circuits)
            costs = [c.quantum_cost()
                     for circuits in result.realizations.values()
                     for c in circuits]
            result.quantum_cost_min = min(costs)
            break
    except TimeoutError:
        result.status = "timeout"

    # If the permuted search stopped before the identity permutation was
    # realizable, the caller can compare against plain synthesis.
    result.runtime = time.perf_counter() - start
    return result
