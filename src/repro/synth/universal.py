"""The universal gate ``U_G`` (Definition 2) and cascades of it (Definition 3).

A universal gate takes the ``n`` line signals ``X`` and
``ceil(log2 q)`` gate-select signals ``Y``; under select code ``k < q``
it behaves as gate ``g_k`` of the library, under padding codes
``k >= q`` as the identity.

Every gate type in the library flips its target lines by a Boolean
*delta* of the old line values (see :mod:`repro.core.gates`), so one
universal-gate stage is::

    new_l = old_l XOR OR_k ( sel_k AND delta_{k,l}(old) )

where ``sel_k`` is the minterm of the select signals for code ``k`` and
the OR ranges over the gates targeting line ``l``.  Padding codes
contribute no delta, giving the identity behaviour for free.

The construction is algebra-generic: the same function builds BDDs
(Section 5.2), Tseitin-ready expression DAGs (Sections 4/5.1) and plain
Boolean evaluations for testing, depending on the :class:`Algebra`
passed in.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence

from repro.core.library import GateLibrary

__all__ = ["Algebra", "BoolAlgebra", "BddAlgebra", "ExprAlgebra",
           "universal_gate_stage", "select_code_bits"]


class Algebra:
    """Boolean operations over some signal type.

    Also satisfies the :class:`repro.core.gates.SymbolicOps` protocol
    (``true``, ``conj``, ``xor``), so gate deltas can be built directly.
    """

    true = None
    false = None

    def conj(self, signals: Iterable) -> object:
        raise NotImplementedError

    def disj(self, signals: Iterable) -> object:
        raise NotImplementedError

    def xor(self, a, b):
        raise NotImplementedError

    def not_(self, a):
        raise NotImplementedError


class BoolAlgebra(Algebra):
    """Concrete Booleans; used to simulate the universal gate in tests."""

    true = True
    false = False

    def conj(self, signals: Iterable) -> bool:
        return all(signals)

    def disj(self, signals: Iterable) -> bool:
        return any(signals)

    def xor(self, a: bool, b: bool) -> bool:
        return bool(a) != bool(b)

    def not_(self, a: bool) -> bool:
        return not a


class BddAlgebra(Algebra):
    """Signals are node ids of a :class:`~repro.bdd.BddManager`."""

    def __init__(self, manager):
        self.manager = manager
        self.true = 1
        self.false = 0

    def conj(self, signals: Iterable[int]) -> int:
        return self.manager.conj(signals)

    def disj(self, signals: Iterable[int]) -> int:
        return self.manager.disj(signals)

    def xor(self, a: int, b: int) -> int:
        return self.manager.xor(a, b)

    def not_(self, a: int) -> int:
        return self.manager.not_(a)


class ExprAlgebra(Algebra):
    """Signals are :class:`~repro.sat.expr.Expr` nodes of a builder."""

    def __init__(self, builder):
        self.builder = builder
        self.true = builder.true
        self.false = builder.false

    def conj(self, signals: Iterable) -> object:
        return self.builder.and_(list(signals))

    def disj(self, signals: Iterable) -> object:
        return self.builder.or_(list(signals))

    def xor(self, a, b):
        return self.builder.xor(a, b)

    def not_(self, a):
        return self.builder.not_(a)


def select_code_bits(code: int, width: int) -> List[bool]:
    """LSB-first bit decomposition of a select code."""
    return [bool((code >> j) & 1) for j in range(width)]


def universal_gate_stage(lines: Sequence, select: Sequence,
                         library: GateLibrary, algebra: Algebra,
                         tick: Callable[[], None] = None) -> List:
    """Apply one universal gate to symbolic line signals.

    ``lines``   — current signals of the ``n`` circuit lines,
    ``select``  — the ``select_bits()`` gate-select signals (LSB first),
    ``tick``    — optional callback invoked once per library gate, letting
                  callers enforce deadlines during long BDD builds;
    returns the ``n`` output signals.
    """
    n = library.n_lines
    width = library.select_bits()
    if len(lines) != n:
        raise ValueError(f"expected {n} line signals, got {len(lines)}")
    if len(select) != width:
        raise ValueError(f"expected {width} select signals, got {len(select)}")
    negated = [algebra.not_(s) for s in select]
    deltas: List = [algebra.false] * n
    for code, gate in enumerate(library):
        if tick is not None:
            tick()
        minterm = algebra.conj(
            select[j] if (code >> j) & 1 else negated[j] for j in range(width)
        )
        for line, delta in gate.symbolic_deltas(lines, algebra).items():
            contribution = algebra.conj([minterm, delta])
            deltas[line] = algebra.disj([deltas[line], contribution])
    return [algebra.xor(lines[l], deltas[l]) for l in range(n)]


def decode_selection(codes: Sequence[int], library: GateLibrary):
    """Map per-position select codes to gates; padding codes map to None."""
    gates = []
    for code in codes:
        if code < library.size():
            gates.append(library[code])
        else:
            gates.append(None)  # identity padding
    return gates
