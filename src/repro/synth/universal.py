"""The universal gate ``U_G`` (Definition 2) and cascades of it (Definition 3).

A universal gate takes the ``n`` line signals ``X`` and
``ceil(log2 q)`` gate-select signals ``Y``; under select code ``k < q``
it behaves as gate ``g_k`` of the library, under padding codes
``k >= q`` as the identity.

Every gate type in the library flips its target lines by a Boolean
*delta* of the old line values (see :mod:`repro.core.gates`), so one
universal-gate stage computes::

    new_l = old_l XOR mux(Y; delta_{0,l}, ..., delta_{2^w - 1,l})

a Shannon mux tree over the ``w`` select signals whose leaf for code
``k`` is gate ``g_k``'s delta on line ``l`` (constant 0 for padding
codes and for gates that do not target ``l``), folded one select bit at
a time.  This replaces the v1 sum-of-minterms form ``OR_k (sel_k AND
delta_{k,l})``: the mux tree *shares* the select-decoding structure
across all ``q`` gate codes instead of building one ``w``-literal
minterm conjunction per code, and equal adjacent leaves collapse for
free at every tree level (hash-consing makes the sharing literal in the
BDD algebra).  Padding codes contribute constant-0 leaves, giving the
identity behaviour for free.

For the pure-MCT library the mux collapses *exactly* into a product.
:func:`repro.core.library.mct_gates` lays codes out as ``k = t *
2**(n-1) + m`` where ``t`` is the target line and bit ``j`` of ``m``
puts the ``j``-th non-target line in the control set.  A mux whose leaf
at subset-index ``m`` is the conjunction ``AND_{j in m} F_j`` satisfies
the identity::

    mux(y_0..y_{w'-1}; AND over subset) = AND_j (NOT y_j OR F_j)

(per induction on ``w'``: ``ite(y, F AND P, P) = P AND (NOT y OR F)``),
so the whole delta becomes::

    delta_l = [Y_high = l] AND  AND_j (NOT y_j OR old_{others_l[j]})

— about ``w`` constant-size operations per line instead of a
``2**w``-leaf tree.  :func:`universal_gate_stage` detects that layout
structurally and takes the factored path; every other library falls
back to the generic mux tree.  Both forms denote the same function, so
on the canonical BDD algebra they return identical edges.

The construction is algebra-generic: the same function builds BDDs
(Section 5.2), Tseitin-ready expression DAGs (Sections 4/5.1) and plain
Boolean evaluations for testing, depending on the :class:`Algebra`
passed in.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.gates import Toffoli
from repro.core.library import GateLibrary

__all__ = ["Algebra", "BoolAlgebra", "BddAlgebra", "ExprAlgebra",
           "universal_gate_stage", "select_code_bits",
           "canonical_select_order", "decode_selection"]


class Algebra:
    """Boolean operations over some signal type.

    Also satisfies the :class:`repro.core.gates.SymbolicOps` protocol
    (``true``, ``conj``, ``xor``), so gate deltas can be built directly.
    """

    true = None
    false = None

    def conj(self, signals: Iterable) -> object:
        raise NotImplementedError

    def disj(self, signals: Iterable) -> object:
        raise NotImplementedError

    def xor(self, a, b):
        raise NotImplementedError

    def not_(self, a):
        raise NotImplementedError

    def ite(self, s, a, b):
        """``a`` when ``s`` holds, else ``b``.

        The generic form expands to ``(s AND a) OR (NOT s AND b)``;
        algebras with a native if-then-else (BDDs) override it so the
        mux tree of :func:`universal_gate_stage` hits the manager's
        tagged ITE cache directly.
        """
        return self.disj([self.conj([s, a]), self.conj([self.not_(s), b])])


class BoolAlgebra(Algebra):
    """Concrete Booleans; used to simulate the universal gate in tests."""

    true = True
    false = False

    def conj(self, signals: Iterable) -> bool:
        return all(signals)

    def disj(self, signals: Iterable) -> bool:
        return any(signals)

    def xor(self, a: bool, b: bool) -> bool:
        return bool(a) != bool(b)

    def not_(self, a: bool) -> bool:
        return not a

    def ite(self, s: bool, a: bool, b: bool) -> bool:
        return a if s else b


class BddAlgebra(Algebra):
    """Signals are node ids of a :class:`~repro.bdd.BddManager`."""

    def __init__(self, manager):
        self.manager = manager
        self.true = 1
        self.false = 0

    def conj(self, signals: Iterable[int]) -> int:
        return self.manager.conj(signals)

    def disj(self, signals: Iterable[int]) -> int:
        return self.manager.disj(signals)

    def xor(self, a: int, b: int) -> int:
        return self.manager.xor(a, b)

    def not_(self, a: int) -> int:
        return self.manager.not_(a)

    def ite(self, s: int, a: int, b: int) -> int:
        return self.manager.ite(s, a, b)


class ExprAlgebra(Algebra):
    """Signals are :class:`~repro.sat.expr.Expr` nodes of a builder."""

    def __init__(self, builder):
        self.builder = builder
        self.true = builder.true
        self.false = builder.false

    def conj(self, signals: Iterable) -> object:
        return self.builder.and_(list(signals))

    def disj(self, signals: Iterable) -> object:
        return self.builder.or_(list(signals))

    def xor(self, a, b):
        return self.builder.xor(a, b)

    def not_(self, a):
        return self.builder.not_(a)


def select_code_bits(code: int, width: int) -> List[bool]:
    """LSB-first bit decomposition of a select code."""
    return [bool((code >> j) & 1) for j in range(width)]


def universal_gate_stage(lines: Sequence, select: Sequence,
                         library: GateLibrary, algebra: Algebra,
                         tick: Callable[[], None] = None) -> List:
    """Apply one universal gate to symbolic line signals.

    ``lines``   — current signals of the ``n`` circuit lines,
    ``select``  — the ``select_bits()`` gate-select signals (LSB first),
    ``tick``    — optional callback invoked once per library gate, letting
                  callers enforce deadlines during long BDD builds;
    returns the ``n`` output signals.
    """
    n = library.n_lines
    width = library.select_bits()
    if len(lines) != n:
        raise ValueError(f"expected {n} line signals, got {len(lines)}")
    if len(select) != width:
        raise ValueError(f"expected {width} select signals, got {len(select)}")
    others_per_target = _mct_bitmask_layout(library)
    if others_per_target is not None:
        return _factored_mct_stage(lines, select, library, algebra,
                                   others_per_target, tick)
    return _mux_tree_stage(lines, select, library, algebra, tick)


def _mux_tree_stage(lines: Sequence, select: Sequence, library: GateLibrary,
                    algebra: Algebra, tick: Callable[[], None]) -> List:
    """Generic path: Shannon mux tree over all ``2**w`` delta leaves."""
    n = library.n_lines
    width = library.select_bits()
    # Leaf table: per line, the delta of each gate code (padding codes
    # and untargeted lines keep the constant-0 leaf).
    padded = 1 << width
    leaves: List[List] = [[algebra.false] * padded for _ in range(n)]
    for code, gate in enumerate(library):
        if tick is not None:
            tick()
        for line, delta in gate.symbolic_deltas(lines, algebra).items():
            leaves[line][code] = delta
    # Fold the mux tree LSB-first: adjacent codes differ in select bit 0,
    # so each pass halves the level, sharing the decode structure across
    # all codes.  Equal siblings short-circuit inside algebra.ite.
    outputs: List = []
    for l in range(n):
        level = leaves[l]
        for j in range(width):
            level = [level[2 * i] if level[2 * i] == level[2 * i + 1]
                     else algebra.ite(select[j], level[2 * i + 1], level[2 * i])
                     for i in range(len(level) // 2)]
        outputs.append(algebra.xor(lines[l], level[0]))
    return outputs


def _mct_bitmask_layout(library: GateLibrary) -> Optional[List[List[int]]]:
    """Detect the bitmask-ordered pure-MCT code layout.

    Returns the per-target lists of non-target lines when gate code
    ``t * 2**(n-1) + m`` is exactly ``Toffoli(target=t,
    controls={others_t[j] : bit j of m set})`` with no negative
    controls; ``None`` for any other library.  The check is structural
    (O(q * n)), so hand-built libraries that happen to match still get
    the fast path.
    """
    n = library.n_lines
    k = n - 1
    if len(library) != n << k:
        return None
    others_per_target = [[l for l in range(n) if l != t] for t in range(n)]
    for code, gate in enumerate(library):
        if type(gate) is not Toffoli or gate.negative_controls:
            return None
        target, mask = code >> k, code & ((1 << k) - 1)
        others = others_per_target[target]
        if gate.targets != (target,):
            return None
        if gate.controls != frozenset(others[j] for j in range(k)
                                      if (mask >> j) & 1):
            return None
    return others_per_target


def _factored_mct_stage(lines: Sequence, select: Sequence,
                        library: GateLibrary, algebra: Algebra,
                        others_per_target: List[List[int]],
                        tick: Callable[[], None]) -> List:
    """Product-form universal MCT gate (see the module docstring).

    ``delta_l = [Y_high = l] AND AND_j (NOT y_j OR old_{others_l[j]})``
    — the exact collapse of the mux tree under the bitmask code layout.
    Padding codes (``Y_high >= n``) match no line's decode literal, so
    they act as the identity without any explicit leaves.
    """
    n = library.n_lines
    k = n - 1
    width = library.select_bits()
    outputs: List = []
    for l in range(n):
        if tick is not None:
            # Preserve the tick-per-gate contract: line l's block of the
            # code space holds the 2**k gates targeting it.
            for _ in range(1 << k):
                tick()
        factors: List = []
        for b in range(k, width):
            factors.append(select[b] if (l >> (b - k)) & 1
                           else algebra.not_(select[b]))
        for j, other in enumerate(others_per_target[l]):
            factors.append(algebra.disj([algebra.not_(select[j]),
                                         lines[other]]))
        outputs.append(algebra.xor(lines[l], algebra.conj(factors)))
    return outputs


def canonical_select_order(select_blocks: Sequence[Sequence[int]]) -> List[int]:
    """Flatten per-position select blocks into a lexmin priority order.

    Position-major, most-significant bit first within each block, so
    minimizing a model lexicographically over the returned list (see
    :func:`repro.sat.incremental.lexmin_model`) yields the smallest
    gate-code sequence among all realizing cascades: earlier cascade
    positions dominate, and within a position the code value itself is
    minimized.  The same rule covers the one-hot encoding — reversing a
    one-hot block makes lexmin prefer the lowest selected gate index.

    This ordering is what makes the warm (incremental) and cold
    (scratch) solver paths return the *same* circuit: the minimum
    depends only on the formula's model set, not on solver history.
    """
    return [var for block in select_blocks for var in reversed(list(block))]


def decode_selection(codes: Sequence[int], library: GateLibrary):
    """Map per-position select codes to gates; padding codes map to None."""
    gates = []
    for code in codes:
        if code < library.size():
            gates.append(library[code])
        else:
            gates.append(None)  # identity padding
    return gates
