"""Synthesis engines and the iterative exact-synthesis driver."""

from repro.synth.bdd_engine import BddSynthesisEngine, DepthOutcome
from repro.synth.driver import (ENGINES, INCREMENTAL_ENGINES,
                                default_gate_limit, engine_session,
                                synthesize)
from repro.synth.qbf_engine import QbfSolverEngine
from repro.synth.result import DepthStat, SynthesisResult
from repro.synth.sat_engine import SatBaselineEngine
from repro.synth.bounds import lower_bound, upper_bound
from repro.synth.optimize import absorb_nots, cancel_pairs, fuse_peres, simplify
from repro.synth.sword_engine import SwordEngine
from repro.synth.transformation import (
    mmd_gate_count_upper_bound,
    transformation_synthesize,
)
from repro.synth.universal import (
    Algebra,
    BddAlgebra,
    BoolAlgebra,
    ExprAlgebra,
    universal_gate_stage,
)

__all__ = [
    "Algebra",
    "BddAlgebra",
    "BddSynthesisEngine",
    "BoolAlgebra",
    "DepthOutcome",
    "DepthStat",
    "ENGINES",
    "ExprAlgebra",
    "INCREMENTAL_ENGINES",
    "QbfSolverEngine",
    "SatBaselineEngine",
    "SwordEngine",
    "SynthesisResult",
    "absorb_nots",
    "cancel_pairs",
    "default_gate_limit",
    "engine_session",
    "fuse_peres",
    "lower_bound",
    "mmd_gate_count_upper_bound",
    "simplify",
    "synthesize",
    "transformation_synthesize",
    "upper_bound",
    "universal_gate_stage",
]
