"""BDD-based quantified synthesis — Section 5.2, the paper's key engine.

Per depth ``d`` the engine holds the outputs of the universal-gate
cascade ``F_d`` as ``n`` BDDs over the input variables ``X`` and the
gate-select variables ``Y_1 .. Y_d``, built incrementally:
``F_d = U_G(F_{d-1}, Y_d)``.  Deciding depth ``d`` means computing

    SOL_d = forall X . AND_l ( f_l^dc OR (F_{d,l} XNOR f_l^on) )

— done in one fused recursion (:meth:`BddManager.match_forall`) that
never materializes the intermediate equality BDD over X and Y; the
``var_order="yx"`` ablation falls back to the explicit comparator
followed by :meth:`BddManager.forall`.  A non-zero result BDD
encodes *every* depth-``d`` realization at once: each model over the
``Y`` variables decodes to one network, so the engine reports the exact
solution count (``#SOL``) and the full quantum-cost range (``QC``) of
Tables 2 and 3.

The variable order is fixed to "X before Y" by creating the ``x``
variables first and appending select variables per depth; the opposite
order (available as ``var_order="yx"`` with ``incremental=False``) makes
``F_d`` enumerate every function realizable with ``d`` gates and blows
up, which ablation A1 measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.bdd.manager import FALSE, BddManager
from repro.core.cancel import CancelToken, as_token
from repro.core.circuit import Circuit
from repro.core.library import GateLibrary
from repro.core.spec import Specification
from repro.synth.universal import BddAlgebra, universal_gate_stage

__all__ = ["DepthOutcome", "BddSynthesisEngine"]


@dataclass
class DepthOutcome:
    """Answer of one depth query (shared by all engines).

    ``detail`` is a small engine-specific dict (human-oriented);
    ``metrics`` uses the stable dot-namespaced names of
    ``docs/observability.md`` and feeds :class:`DepthStat.metrics`.
    """

    status: str  # "sat", "unsat" or "unknown"
    circuits: List[Circuit] = field(default_factory=list)
    num_solutions: Optional[int] = None
    quantum_cost_min: Optional[int] = None
    quantum_cost_max: Optional[int] = None
    detail: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    solutions_truncated: bool = False


class _Deadline:
    """Cooperative deadline, cancellation and memory guard for BDD loops.

    Pure-Python BDD caches can grow into gigabytes on the hardest
    instances (hwb4 at depth 11); dropping the operation caches once they
    pass ``cache_limit`` entries trades some recomputation for bounded
    memory.  The unique table (the nodes themselves) is never dropped, so
    results are unaffected.  ``token`` is polled at the same cadence, so
    a portfolio/suite coordinator can stop the engine mid-apply (raising
    :class:`repro.core.cancel.CancelledError`, which the driver turns
    into a ``"cancelled"`` result rather than a timeout).
    """

    def __init__(self, limit: Optional[float], manager=None,
                 cache_limit: int = 1_500_000,
                 token: Optional[CancelToken] = None):
        self._expiry = None if limit is None else time.perf_counter() + limit
        self._manager = manager
        self._cache_limit = cache_limit
        self._token = as_token(token)

    def check(self) -> None:
        self._token.raise_if_cancelled()
        if self._expiry is not None and time.perf_counter() > self._expiry:
            raise TimeoutError("synthesis deadline exceeded")
        if (self._manager is not None
                and self._manager.cache_size() > self._cache_limit):
            self._manager.clear_caches()


class BddSynthesisEngine:
    """Stateful per-specification engine; query depths in increasing order."""

    name = "bdd"

    def __init__(self, spec: Specification, library: GateLibrary,
                 incremental: bool = True, var_order: str = "xy",
                 compact_between_depths: bool = True,
                 max_enumerate: int = 200_000,
                 cache_limit: int = 1_500_000,
                 reorder: bool = False,
                 gc_threshold: int = 0,
                 cancel_token: Optional[CancelToken] = None):
        """``cache_limit`` bounds the manager's *operation-cache* entry
        count: once ``ite``/quantification caches together exceed it they
        are dropped (the unique table never is, so answers are
        unaffected).  The default suits a machine running one synthesis;
        memory-bounded parallel workers — several engines racing in a
        portfolio, or a wide :mod:`repro.parallel.scheduler` pool —
        should shrink it via ``engine_options={"cache_limit": ...}`` so
        the per-process peak stays within its share of RAM.

        ``gc_threshold`` > 0 arms mark-and-sweep collection of dead
        depth-frontier nodes at that live-node count, checked between
        cascade stages; ``reorder`` truthy arms sifting-based dynamic
        reordering of the select-variable block at the same checkpoints
        (the input block stays on top — the fused-quantification
        precondition).  Passing an ``int`` sets the live-node count
        that first triggers a sift (``True`` keeps the manager
        default).  Both default off, leaving the default allocation
        trajectory byte-identical to the v2 core; both change only
        memory/runtime, never answers — reordering trades sift time
        for node-store headroom, so it pays on memory-bound instances,
        not fast small ones.

        ``cancel_token`` is polled from the deadline/allocation tick; see
        :mod:`repro.core.cancel`.
        """
        if library.n_lines != spec.n_lines:
            raise ValueError("library and specification widths differ")
        if var_order not in ("xy", "yx"):
            raise ValueError("var_order must be 'xy' or 'yx'")
        if var_order == "yx" and incremental:
            raise ValueError("the Y-before-X order requires incremental=False "
                             "(select variables must precede the inputs)")
        if reorder and not incremental:
            raise ValueError("dynamic reordering requires incremental=True "
                             "(the monolithic ablation rebuilds per depth)")
        self.spec = spec
        self.library = library
        self.incremental = incremental
        self.var_order = var_order
        self.compact_between_depths = compact_between_depths
        self.max_enumerate = max_enumerate
        self.cache_limit = cache_limit
        self.reorder = reorder
        self.gc_threshold = gc_threshold
        self.cancel_token = as_token(cancel_token)
        self.n = spec.n_lines
        self.width = library.select_bits()
        if incremental:
            self._init_incremental()

    # -- incremental state ------------------------------------------------------

    def _init_incremental(self) -> None:
        self.manager = BddManager()
        self.x_vars = [self.manager.add_var(f"x{l}") for l in range(self.n)]
        self.y_vars: List[List[int]] = []  # per position
        self.lines: List[int] = [self.manager.var(v) for v in self.x_vars]
        self.built_depth = 0
        self._build_spec_bdds(self.manager, self.x_vars)
        self._protect_roots()
        if self.gc_threshold:
            self.manager.enable_auto_gc(threshold=self.gc_threshold,
                                        enabled=False)
        if self.reorder:
            # Sift only the select block: match_forall requires every
            # input variable above every select variable, so the X block
            # is pinned at the top of the order.
            if self.reorder is True:
                self.manager.enable_auto_reorder(lower=self.n)
            else:
                self.manager.enable_auto_reorder(lower=self.n,
                                                 min_nodes=int(self.reorder))

    def _protect_roots(self) -> None:
        """Register the engine's long-lived edges as external GC roots.

        Protection is what lets :meth:`BddManager.gc` (and the sifting
        session's reference counts) see the cascade frontier and the
        spec BDDs as live; everything else allocated while building a
        stage is reclaimable.  Managers without the protocol (the
        vendored v2 core the benchmark harness injects) degrade to no
        protection — they have no GC to protect against.
        """
        self._protect = getattr(self.manager, "protect", None)
        self._unprotect = getattr(self.manager, "unprotect", None)
        if self._protect is None:
            return
        for edge in (*self.lines, *self.on_bdds, *self.dc_bdds):
            self._protect(edge)

    def _replace_lines(self, new_lines: List[int]) -> None:
        """Swap the protected cascade frontier to a new stage's outputs."""
        if self._protect is not None:
            for edge in new_lines:
                self._protect(edge)
            for edge in self.lines:
                self._unprotect(edge)
        self.lines = new_lines

    def _checkpoint(self) -> None:
        """Between-stage service point: reclaim and/or reorder.

        Only here — never from inside an apply — because the stage
        builder holds intermediate edges in plain Python frames the
        manager cannot see, and in-flight loops cache level numbers
        that sifting would invalidate.
        """
        if self.gc_threshold:
            self.manager.maybe_gc()
        if self.reorder:
            self.manager.maybe_reorder()

    def _build_spec_bdds(self, manager: BddManager, x_vars: Sequence[int]) -> None:
        """ON-set and don't-care-set BDDs per output line (Definition 4)."""
        self.on_bdds = [manager.from_minterms(x_vars, self.spec.on_set(l))
                        for l in range(self.n)]
        self.dc_bdds = [manager.from_minterms(x_vars, self.spec.dc_set(l))
                        for l in range(self.n)]

    def _select_block(self, manager: BddManager, position: int) -> List[int]:
        """Create one position's select variables; list is LSB-first.

        Creation order within the block is MSB-first, putting the
        target-decode bits *above* the control-subset bits in the BDD
        order.  The decode literal ``[Y_high = l]`` then splits each
        stage's diagrams near the top instead of being re-tested under
        every subset-bit combination — measurably smaller intermediate
        BDDs (~15-20% faster end to end on the benchmark suite) with
        identical solutions.
        """
        block = [manager.add_var(f"y{position}_{j}")
                 for j in reversed(range(self.width))]
        block.reverse()
        return block

    def _advance_to(self, depth: int, deadline: _Deadline) -> None:
        algebra = BddAlgebra(self.manager)
        while self.built_depth < depth:
            position = self.built_depth
            select_vars = self._select_block(self.manager, position)
            self.y_vars.append(select_vars)
            select_nodes = [self.manager.var(v) for v in select_vars]
            self._replace_lines(universal_gate_stage(
                self.lines, select_nodes, self.library, algebra,
                tick=deadline.check,
            ))
            self.built_depth += 1
            self._checkpoint()

    def _compact(self) -> None:
        roots = list(self.lines) + list(self.on_bdds) + list(self.dc_bdds)
        remapped = self.manager.compact(roots)
        self.lines = remapped[:self.n]
        self.on_bdds = remapped[self.n:2 * self.n]
        self.dc_bdds = remapped[2 * self.n:]

    # -- monolithic (per-depth rebuild) state -------------------------------------

    def _build_monolithic(self, depth: int, deadline: _Deadline):
        manager = BddManager()
        deadline._manager = manager
        manager.set_alloc_tick(deadline.check)
        if self.var_order == "yx":
            y_vars = [self._select_block(manager, p) for p in range(depth)]
            x_vars = [manager.add_var(f"x{l}") for l in range(self.n)]
        else:
            x_vars = [manager.add_var(f"x{l}") for l in range(self.n)]
            y_vars = [self._select_block(manager, p) for p in range(depth)]
        algebra = BddAlgebra(manager)
        lines = [manager.var(v) for v in x_vars]
        for position in range(depth):
            select_nodes = [manager.var(v) for v in y_vars[position]]
            lines = universal_gate_stage(lines, select_nodes, self.library,
                                         algebra, tick=deadline.check)
        self._build_spec_bdds(manager, x_vars)
        return manager, x_vars, y_vars, lines

    # -- main query ------------------------------------------------------------------

    def decide(self, depth: int,
               time_limit: Optional[float] = None) -> DepthOutcome:
        """Is the specification realizable with ``depth`` cascade slots?

        Following footnote 1 of the paper, identity behaviour exists only
        for the padding codes ``q .. 2^bits - 1``; when ``q`` is an exact
        power of two each slot holds a real gate and the query means
        "exactly ``depth`` gates", otherwise "at most ``depth``".  Either
        way the iterative driver's guarantee holds: the first satisfiable
        depth is the minimal gate count, because a minimal circuit uses
        exactly that many real gates.
        """
        deadline = _Deadline(time_limit,
                             manager=self.manager if self.incremental else None,
                             cache_limit=self.cache_limit,
                             token=self.cancel_token)
        before = (self.manager.stats() if self.incremental
                  else {"ite_calls": 0, "ite_cache_hits": 0,
                        "quant_calls": 0, "quant_cache_hits": 0})
        # The allocation tick fires the deadline check inside long apply
        # runs too (a single ITE can dwarf the per-gate ticks of
        # universal_gate_stage); uninstalled in the finally so a stale
        # deadline never interrupts a later query.
        if self.incremental:
            self.manager.set_alloc_tick(deadline.check)
        try:
            if self.incremental:
                if depth < self.built_depth:
                    raise ValueError("incremental engine: query depths in "
                                     "non-decreasing order")
                with obs.span("bdd.cascade", depth=depth):
                    self._advance_to(depth, deadline)
                manager, x_vars = self.manager, self.x_vars
                y_vars, lines = self.y_vars, self.lines
            else:
                with obs.span("bdd.cascade", depth=depth, monolithic=True):
                    manager, x_vars, y_vars, lines = self._build_monolithic(
                        depth, deadline)

            if self.var_order == "yx":
                # The fused recursion needs the quantified inputs at the
                # top of the order; the Y-before-X ablation keeps the
                # original two-step comparator + forall route.
                with obs.span("bdd.equality", depth=depth):
                    terms = []
                    for l in range(self.n):
                        deadline.check()
                        agree = manager.xnor(lines[l], self.on_bdds[l])
                        terms.append(manager.or_(self.dc_bdds[l], agree))
                    equality = manager.conj(terms)
                deadline.check()
                with obs.span("bdd.quantify", depth=depth):
                    solutions = manager.forall(equality, x_vars)
            else:
                with obs.span("bdd.quantify", depth=depth):
                    solutions = manager.match_forall(
                        lines, self.on_bdds, self.dc_bdds, self.n)
            deadline.check()
        except TimeoutError:
            return DepthOutcome(status="unknown", detail={"timeout": True},
                                metrics=self._metrics(before))
        finally:
            if self.incremental:
                self.manager.set_alloc_tick(None)

        detail = {"nodes": manager.node_count(),
                  "eq_size": manager.size(solutions)}
        metrics = self._metrics(before, manager)
        metrics["bdd.eq_size"] = detail["eq_size"]
        if solutions == FALSE:
            if self.incremental and self.compact_between_depths:
                self._compact()
            return DepthOutcome(status="unsat", detail=detail, metrics=metrics)

        if self.reorder:
            # Model enumeration walks variables in sorted-id order, so
            # sifting's select-block permutation must be undone first;
            # the solutions edge survives the swaps unchanged (edge
            # stability), it just needs to be a root while they run.
            from repro.bdd.reorder import restore_block_order
            with manager.protected(solutions):
                restore_block_order(manager, lower=self.n)
        with obs.span("bdd.extract", depth=depth):
            outcome = self._extract(manager, y_vars, solutions, depth, detail,
                                    metrics)
        if self.incremental and self.compact_between_depths:
            self._compact()
        return outcome

    def _metrics(self, before: Dict[str, int],
                 manager: Optional[BddManager] = None) -> Dict[str, float]:
        """Per-depth ``bdd.*`` metrics: counter deltas + state gauges.

        In incremental mode the manager counters span all depths, so the
        query's own work is the difference against the snapshot taken at
        the start of :meth:`decide`; monolithic managers start at zero.
        """
        if manager is None:
            manager = getattr(self, "manager", None)
        if manager is None:  # monolithic build timed out before a manager
            return {}
        now = manager.stats()
        calls = now["ite_calls"] - before.get("ite_calls", 0)
        hits = now["ite_cache_hits"] - before.get("ite_cache_hits", 0)
        # The gc/reorder/bytes figures use .get defaults so the engine
        # still runs against managers predating the v3 core (the
        # benchmark harness injects the vendored v2 manager).
        return {
            "bdd.nodes": now["nodes"],
            "bdd.peak_nodes": now["peak_nodes"],
            "bdd.num_vars": now["num_vars"],
            "bdd.bytes": now.get("bytes", 0),
            "bdd.ite_calls": calls,
            "bdd.ite_cache_hits": hits,
            "bdd.ite_cache_misses": calls - hits,
            "bdd.ite_cache_entries": now["ite_cache_entries"],
            "bdd.quant_calls": now["quant_calls"] - before.get("quant_calls", 0),
            "bdd.quant_cache_hits": (now["quant_cache_hits"]
                                     - before.get("quant_cache_hits", 0)),
            "bdd.quant_cache_entries": now["quant_cache_entries"],
            "bdd.cache_clears": now["cache_clears"],
            "bdd.gc_runs": (now.get("gc_runs", 0)
                            - before.get("gc_runs", 0)),
            "bdd.gc_reclaimed": (now.get("gc_reclaimed", 0)
                                 - before.get("gc_reclaimed", 0)),
            "bdd.reorder_runs": (now.get("reorder_runs", 0)
                                 - before.get("reorder_runs", 0)),
            "bdd.reorder_swaps": (now.get("reorder_swaps", 0)
                                  - before.get("reorder_swaps", 0)),
        }

    # -- solution extraction -------------------------------------------------------------

    def _extract(self, manager: BddManager, y_vars: Sequence[Sequence[int]],
                 solutions: int, depth: int, detail: Dict[str, object],
                 metrics: Dict[str, float]) -> DepthOutcome:
        all_select = [v for block in y_vars for v in block]
        count = manager.count_models(solutions, all_select) if all_select else 1
        circuits: List[Circuit] = []
        truncated = False
        if all_select:
            for model in manager.iter_models(solutions, all_select):
                circuits.append(self._decode(model, y_vars))
                if len(circuits) >= self.max_enumerate:
                    truncated = len(circuits) < count
                    break
        else:  # depth 0: the identity circuit
            circuits.append(Circuit(self.n))
        costs = [c.quantum_cost() for c in circuits]
        metrics = dict(metrics)
        metrics["bdd.solutions"] = count
        if truncated:
            # min(costs)/max(costs) cover only the enumerated sample, not
            # all `count` realizations — flag it rather than passing the
            # sample range off as the paper's full QC spread.
            detail = dict(detail)
            detail["qc_range_sample_only"] = True
        return DepthOutcome(
            status="sat",
            circuits=circuits,
            num_solutions=count,
            quantum_cost_min=min(costs),
            quantum_cost_max=max(costs),
            detail=detail,
            metrics=metrics,
            solutions_truncated=truncated,
        )

    def _decode(self, model: Dict[int, bool],
                y_vars: Sequence[Sequence[int]]) -> Circuit:
        """Turn one Y-assignment into a circuit (padding codes = identity).

        At the minimal depth no model contains a padding code (the
        remaining gates would realize the function with fewer gates,
        contradicting unsatisfiability one level down), but queries at
        non-minimal depths legitimately decode shorter circuits.
        """
        gates = []
        for block in y_vars:
            code = sum((1 << j) for j, var in enumerate(block) if model[var])
            if code < self.library.size():
                gates.append(self.library[code])
        return Circuit(self.n, gates)
