"""Equivalence checking for reversible circuits.

A companion paper the paper's group published separately ("Equivalence Checking
of Reversible Circuits"): since reversible circuits are permutations,
two circuits are equivalent iff their permutations coincide — checkable
exhaustively for small widths or symbolically on BDDs (build both output
vectors over shared input variables; canonicity makes equality a node-id
comparison, and XOR-ing the outputs yields counterexamples directly).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bdd.manager import FALSE, BddManager
from repro.core.circuit import Circuit
from repro.core.gates import BOOL_OPS
from repro.core.spec import Specification

__all__ = [
    "circuit_output_bdds",
    "circuits_equivalent",
    "counterexample",
    "circuit_realizes",
]


def circuit_output_bdds(circuit: Circuit, manager: BddManager,
                        x_vars: List[int]) -> List[int]:
    """Symbolically simulate a circuit: one output BDD per line.

    The evolving line frontier is registered as external GC roots and
    dead per-gate intermediates are offered back between gates
    (:meth:`BddManager.maybe_gc`), so deep circuits simulate within a
    bounded node store.  Callers holding edges from *earlier* calls on
    the same manager should :meth:`~BddManager.protect` them first.
    """
    if len(x_vars) != circuit.n_lines:
        raise ValueError("one input variable per line required")

    class _Algebra:
        true = 1

        @staticmethod
        def conj(signals):
            return manager.conj(signals)

        @staticmethod
        def xor(a, b):
            return manager.xor(a, b)

    lines = [manager.protect(manager.var(v)) for v in x_vars]
    for gate in circuit:
        deltas = gate.symbolic_deltas(lines, _Algebra)
        new_lines = list(lines)
        for line, delta in deltas.items():
            new_lines[line] = manager.xor(lines[line], delta)
        for edge in new_lines:
            manager.protect(edge)
        for edge in lines:
            manager.unprotect(edge)
        lines = new_lines
        manager.maybe_gc()
    for edge in lines:
        manager.unprotect(edge)
    return lines


def circuits_equivalent(first: Circuit, second: Circuit,
                        method: str = "bdd") -> bool:
    """Are the two circuits the same permutation?

    ``method="bdd"`` compares canonical output BDDs; ``"exhaustive"``
    simulates all ``2^n`` inputs (fine for small widths, and the test
    oracle for the BDD path).
    """
    if first.n_lines != second.n_lines:
        return False
    if method == "exhaustive":
        return first.permutation() == second.permutation()
    if method != "bdd":
        raise ValueError("method must be 'bdd' or 'exhaustive'")
    manager = BddManager(first.n_lines)
    x_vars = list(range(first.n_lines))
    outputs_a = circuit_output_bdds(first, manager, x_vars)
    with manager.protected(*outputs_a):  # survive the second walk's GC
        outputs_b = circuit_output_bdds(second, manager, x_vars)
    return outputs_a == outputs_b  # canonicity: equality is id equality


def counterexample(first: Circuit,
                   second: Circuit) -> Optional[Tuple[int, int, int]]:
    """A distinguishing input, or None if equivalent.

    Returns ``(input, first_output, second_output)``; found symbolically
    by satisfying the XOR of any differing output pair.
    """
    if first.n_lines != second.n_lines:
        raise ValueError("circuits have different widths")
    n = first.n_lines
    manager = BddManager(n)
    x_vars = list(range(n))
    outputs_a = circuit_output_bdds(first, manager, x_vars)
    with manager.protected(*outputs_a):  # survive the second walk's GC
        outputs_b = circuit_output_bdds(second, manager, x_vars)
    difference = manager.disj(manager.xor(a, b)
                              for a, b in zip(outputs_a, outputs_b))
    if difference == FALSE:
        return None
    model = manager.sat_one(difference)
    assert model is not None
    packed = sum(int(model.get(v, False)) << v for v in x_vars)
    return packed, first.simulate(packed), second.simulate(packed)


def circuit_realizes(circuit: Circuit, spec: Specification,
                     method: str = "bdd") -> bool:
    """Does the circuit satisfy a (possibly incomplete) specification?

    The BDD path mirrors the synthesis equality check:
    ``AND_l (dc_l OR (out_l XNOR on_l))`` must be the tautology.
    """
    if method == "exhaustive":
        return spec.matches_circuit(circuit)
    if method != "bdd":
        raise ValueError("method must be 'bdd' or 'exhaustive'")
    if circuit.n_lines != spec.n_lines:
        return False
    n = spec.n_lines
    manager = BddManager(n)
    x_vars = list(range(n))
    outputs = circuit_output_bdds(circuit, manager, x_vars)
    condition = 1
    for l in range(n):
        on = manager.from_minterms(x_vars, spec.on_set(l))
        dc = manager.from_minterms(x_vars, spec.dc_set(l))
        term = manager.or_(dc, manager.xnor(outputs[l], on))
        condition = manager.and_(condition, term)
    return condition == 1
