"""Parametric benchmark families reconstructed from their definitions.

Everything in this module is built from the published *semantics* of the
benchmark (Gray code, hidden weighted bit, popcount, decoder, modulo
indicator, 1-bit ALU); see DESIGN.md section 3 for how these map onto the
paper's RevLib instances.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.spec import Specification
from repro.core.truth_table import popcount

__all__ = [
    "graycode",
    "hwb",
    "rd32",
    "decod24",
    "mod_indicator",
    "one_bit_alu",
]


def graycode(n_lines: int) -> Specification:
    """Binary-to-Gray converter: ``out = x XOR (x >> 1)``.

    Linear (CNOT-realizable); the minimal MCT network is ``n - 1`` CNOTs,
    so ``graycode6`` has the paper's depth 5.
    """
    if n_lines < 2:
        raise ValueError("graycode needs at least 2 lines")
    perm = [x ^ (x >> 1) for x in range(1 << n_lines)]
    return Specification.from_permutation(perm, name=f"graycode{n_lines}")


def hwb(n_lines: int) -> Specification:
    """Hidden-weighted-bit function: rotate the input by its popcount.

    The rotation amount (the Hamming weight) is rotation-invariant, so
    the mapping is a bijection.  ``hwb4`` is the paper's hardest
    completely specified 4-line benchmark (minimal MCT depth 11).
    """
    if n_lines < 1:
        raise ValueError("hwb needs at least one line")
    size = 1 << n_lines
    perm = []
    for x in range(size):
        k = popcount(x) % n_lines
        rotated = ((x >> k) | (x << (n_lines - k))) & (size - 1)
        perm.append(rotated)
    return Specification.from_permutation(perm, name=f"hwb{n_lines}")


def rd32(sum_line: int = 0, carry_line: int = 3, name: str = "rd32") -> Specification:
    """The rd32 weight function: 3 inputs, outputs their popcount in binary.

    Embedded on 4 lines: data on lines 0..2, constant 0 on line 3; the
    sum bit (XOR of the inputs) and carry bit (majority) land on the
    given lines, the rest is garbage.
    """
    if sum_line == carry_line:
        raise ValueError("sum and carry must use different lines")

    def fn(x: int) -> int:
        # output bit 0 = sum (parity), bit 1 = carry (weight >= 2)
        return popcount(x & 0b111)

    return Specification.from_io_function(
        4, fn,
        input_lines=[0, 1, 2],
        output_lines=[sum_line, carry_line],
        constants={3: 0},
        name=name,
    )


def decod24(constants: Tuple[int, int], name: str = "decod24") -> Specification:
    """2-to-4 decoder on 4 lines: output line j carries ``[input == j]``.

    Two data inputs on lines 0 and 1, two constant lines (2 and 3) whose
    values distinguish the paper's v0..v3 variants.  All four outputs are
    specified on the care domain — the only don't cares come from the
    constant-input restriction.
    """

    def fn(x: int) -> int:
        return 1 << (x & 0b11)

    return Specification.from_io_function(
        4, fn,
        input_lines=[0, 1],
        output_lines=[0, 1, 2, 3],
        constants={2: constants[0], 3: constants[1]},
        name=name,
    )


def mod_indicator(n_data: int, modulus: int, residue: int,
                  output_line: int, name: str) -> Specification:
    """Indicator of ``x mod modulus == residue`` over ``n_data`` input bits.

    Embedded on ``n_data + 1`` lines: data on the low lines, constant 0 on
    the top line, the single specified output on ``output_line``; every
    other output is garbage.  With ``n_data = 4`` and ``modulus = 5`` this
    is the semantic reconstruction of the RevLib mod5 family.
    """
    n_lines = n_data + 1
    if not 0 <= output_line < n_lines:
        raise ValueError("output line out of range")

    def fn(x: int) -> int:
        return 1 if x % modulus == residue else 0

    return Specification.from_io_function(
        n_lines, fn,
        input_lines=list(range(n_data)),
        output_lines=[output_line],
        constants={n_data: 0},
        name=name,
    )


#: op-code -> semantics of the reconstructed 1-bit ALU
_ALU_OPS = {
    0: lambda a, b: a & b,
    1: lambda a, b: a | b,
    2: lambda a, b: a ^ b,
    3: lambda a, b: (~a) & 1,
}


def one_bit_alu(output_line: int, op_order: Sequence[int] = (0, 1, 2, 3),
                name: str = "alu") -> Specification:
    """A reconstructed 1-bit ALU on 5 lines.

    Lines 0 and 1 select the operation (AND / OR / XOR / NOT, permuted by
    ``op_order`` to create the v0..v3 variants), lines 2 and 3 carry the
    operands, line 4 is a constant 0.  The single specified output (the
    ALU result) lands on ``output_line``; the rest is garbage.
    """
    if sorted(op_order) != [0, 1, 2, 3]:
        raise ValueError("op_order must permute (0, 1, 2, 3)")

    def fn(x: int) -> int:
        op = op_order[x & 0b11]
        a = (x >> 2) & 1
        b = (x >> 3) & 1
        return _ALU_OPS[op](a, b) & 1

    return Specification.from_io_function(
        5, fn,
        input_lines=[0, 1, 2, 3],
        output_lines=[output_line],
        constants={4: 0},
        name=name,
    )
