"""Benchmark functions: the paper's suite and parametric families."""

from repro.functions.parametric import (
    decod24,
    graycode,
    hwb,
    mod_indicator,
    one_bit_alu,
    rd32,
)
from repro.functions.standins import seeded_mct_permutation, standin
from repro.functions.suite import (
    SUITE,
    BenchmarkEntry,
    entries,
    get_spec,
    table1_entries,
    table2_entries,
    table3_entries,
)

__all__ = [
    "SUITE",
    "BenchmarkEntry",
    "decod24",
    "entries",
    "get_spec",
    "graycode",
    "hwb",
    "mod_indicator",
    "one_bit_alu",
    "rd32",
    "seeded_mct_permutation",
    "standin",
    "table1_entries",
    "table2_entries",
    "table3_entries",
]
