"""The benchmark suite of the paper's experimental evaluation.

Each entry names one row of Tables 1-3 and records how it is realized in
this reproduction (exact / semantic reconstruction / synthetic stand-in)
plus the paper-reported minimal MCT depth where the paper states one.
``tier`` controls which benchmarks the default bench run includes:
``"default"`` instances finish in seconds-to-minutes in pure Python,
``"full"`` instances (hwb4, 4_49, graycode6, the 5-line functions) are
enabled with ``REPRO_FULL=1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.spec import Specification
from repro.functions.parametric import (
    decod24,
    graycode,
    hwb,
    mod_indicator,
    one_bit_alu,
    rd32,
)
from repro.functions.standins import standin

__all__ = ["BenchmarkEntry", "SUITE", "get_spec", "entries",
           "table1_entries", "table2_entries", "table3_entries"]

#: The standard 3_17 permutation (3 lines, minimal MCT depth 6).
PERM_3_17 = (7, 1, 4, 3, 0, 2, 6, 5)

#: The standard 4_49 permutation (4 lines, minimal MCT depth 12).
PERM_4_49 = (15, 1, 12, 3, 5, 6, 8, 7, 0, 10, 13, 9, 2, 4, 14, 11)


@dataclass(frozen=True)
class BenchmarkEntry:
    """One benchmark of the paper plus its realization in this repo."""

    name: str
    factory: Callable[[], Specification]
    completely_specified: bool
    tier: str  # "default" or "full"
    paper_depth_mct: Optional[int]  # D column of Table 1, when stated
    provenance: str  # "exact", "semantic", "stand-in" or "scaled stand-in"
    note: str = ""

    def spec(self) -> Specification:
        built = self.factory()
        return built


def _spec_from_perm(perm, name: str) -> Callable[[], Specification]:
    return lambda: Specification.from_permutation(perm, name=name)


_ENTRIES: List[BenchmarkEntry] = [
    # -- completely specified (Table 1, upper half) ---------------------------
    BenchmarkEntry(
        "mod5mils", lambda: standin("mod5mils", 4, 5, seed=518),
        True, "default", 5, "stand-in",
        "RevLib netlist unavailable offline; seeded 4-line cascade of 5 MCT gates"),
    BenchmarkEntry(
        "graycode6", lambda: graycode(6),
        True, "full", 5, "exact", "binary-to-Gray, linear"),
    BenchmarkEntry(
        "graycode4", lambda: graycode(4),
        True, "default", None, "exact",
        "scaled default-tier companion of graycode6"),
    BenchmarkEntry(
        "3_17", _spec_from_perm(PERM_3_17, "3_17"),
        True, "default", 6, "exact", "standard 3_17 permutation"),
    BenchmarkEntry(
        "mod5d1", lambda: standin("mod5d1", 5, 7, seed=5071),
        True, "full", 7, "stand-in",
        "RevLib netlist unavailable offline; seeded 5-line cascade of 7 MCT gates"),
    BenchmarkEntry(
        "mod5d1_s", lambda: standin("mod5d1_s", 4, 6, seed=471),
        True, "default", None, "scaled stand-in",
        "4-line scaled companion of the mod5d1 stand-in"),
    BenchmarkEntry(
        "mod5d2", lambda: standin("mod5d2", 5, 8, seed=5082),
        True, "full", 8, "stand-in",
        "RevLib netlist unavailable offline; seeded 5-line cascade of 8 MCT gates"),
    BenchmarkEntry(
        "mod5d2_s", lambda: standin("mod5d2_s", 4, 7, seed=482),
        True, "default", None, "scaled stand-in",
        "4-line scaled companion of the mod5d2 stand-in"),
    BenchmarkEntry(
        "hwb4", lambda: hwb(4),
        True, "full", 11, "exact", "hidden weighted bit"),
    BenchmarkEntry(
        "4_49", _spec_from_perm(PERM_4_49, "4_49"),
        True, "full", 12, "exact", "standard 4_49 permutation"),
    # -- incompletely specified (Table 1, lower half) ---------------------------
    BenchmarkEntry(
        "rd32-v0", lambda: rd32(sum_line=2, carry_line=3, name="rd32-v0"),
        False, "default", 4, "semantic", "3-bit popcount, variant placements"),
    BenchmarkEntry(
        "rd32-v1", lambda: rd32(sum_line=0, carry_line=3, name="rd32-v1"),
        False, "default", 5, "semantic", "3-bit popcount, variant placements"),
    BenchmarkEntry(
        "mod5-v0", lambda: mod_indicator(4, 5, 0, 4, "mod5-v0"),
        False, "default", None, "semantic", "indicator of x = 0 (mod 5), 5 lines"),
    BenchmarkEntry(
        "mod5-v1", lambda: mod_indicator(4, 5, 4, 4, "mod5-v1"),
        False, "default", None, "semantic", "indicator of x = 4 (mod 5), 5 lines"),
    BenchmarkEntry(
        "mod5-v0_s", lambda: mod_indicator(3, 5, 0, 3, "mod5-v0_s"),
        False, "default", None, "scaled stand-in",
        "3-data-bit scaled companion of mod5-v0"),
    BenchmarkEntry(
        "mod5-v1_s", lambda: mod_indicator(3, 5, 4, 3, "mod5-v1_s"),
        False, "default", None, "scaled stand-in",
        "3-data-bit scaled companion of mod5-v1"),
    BenchmarkEntry(
        "decod24-v0", lambda: decod24((0, 0), "decod24-v0"),
        False, "default", None, "semantic", "2-to-4 decoder, constants 00"),
    BenchmarkEntry(
        "decod24-v1", lambda: decod24((1, 0), "decod24-v1"),
        False, "default", None, "semantic", "2-to-4 decoder, constants 10"),
    BenchmarkEntry(
        "decod24-v2", lambda: decod24((0, 1), "decod24-v2"),
        False, "default", None, "semantic", "2-to-4 decoder, constants 01"),
    BenchmarkEntry(
        "decod24-v3", lambda: decod24((1, 1), "decod24-v3"),
        False, "default", None, "semantic", "2-to-4 decoder, constants 11"),
    BenchmarkEntry(
        "ALU-v0", lambda: one_bit_alu(4, (0, 1, 2, 3), "ALU-v0"),
        False, "full", 6, "semantic", "1-bit ALU, op order AND/OR/XOR/NOT"),
    BenchmarkEntry(
        "ALU-v1", lambda: one_bit_alu(4, (2, 0, 1, 3), "ALU-v1"),
        False, "full", 7, "semantic", "1-bit ALU, op order XOR/AND/OR/NOT"),
    BenchmarkEntry(
        "ALU-v2", lambda: one_bit_alu(4, (1, 2, 0, 3), "ALU-v2"),
        False, "full", 7, "semantic", "1-bit ALU, op order OR/XOR/AND/NOT"),
    BenchmarkEntry(
        "ALU-v3", lambda: one_bit_alu(4, (3, 2, 1, 0), "ALU-v3"),
        False, "full", 7, "semantic", "1-bit ALU, op order NOT/XOR/OR/AND"),
    BenchmarkEntry(
        "alu_small", lambda: _alu_small(),
        False, "default", None, "scaled stand-in",
        "4-line scaled ALU: 1 op-select bit choosing AND/XOR"),
    # -- Table 3 extra ------------------------------------------------------------
    BenchmarkEntry(
        "4mod5", lambda: mod_indicator(4, 5, 0, 0, "4mod5"),
        False, "full", None, "semantic",
        "as mod5-v0 with the output on line 0"),
    # -- the "trivial functions" the paper's footnote 3 omits -----------------------
    BenchmarkEntry(
        "toffoli", lambda: _gate_benchmark("toffoli"),
        True, "default", None, "exact", "single Toffoli gate (D = 1)"),
    BenchmarkEntry(
        "fredkin", lambda: _gate_benchmark("fredkin"),
        True, "default", None, "exact",
        "single controlled-swap (D = 1 with MCF, 3 with MCT)"),
    BenchmarkEntry(
        "peres", lambda: _gate_benchmark("peres"),
        True, "default", None, "exact",
        "single Peres gate (D = 1 with Peres gates, 2 with MCT)"),
]


def _gate_benchmark(which: str) -> Specification:
    """Truth table of a single named gate on 3 lines."""
    from repro.core.gates import Fredkin, Peres, Toffoli

    gate = {
        "toffoli": Toffoli((0, 1), 2),
        "fredkin": Fredkin((2,), 0, 1),
        "peres": Peres(0, 1, 2),
    }[which]
    perm = tuple(gate.apply(x) for x in range(8))
    return Specification.from_permutation(perm, name=which)


def _alu_small() -> Specification:
    """4-line scaled ALU: op bit selects AND or XOR of two operands."""
    from repro.core.spec import Specification as _Spec

    def fn(x: int) -> int:
        op = x & 1
        a = (x >> 1) & 1
        b = (x >> 2) & 1
        return (a & b) if op == 0 else (a ^ b)

    return _Spec.from_io_function(
        4, fn,
        input_lines=[0, 1, 2],
        output_lines=[3],
        constants={3: 0},
        name="alu_small",
    )


SUITE: Dict[str, BenchmarkEntry] = {entry.name: entry for entry in _ENTRIES}


def get_spec(name: str) -> Specification:
    """Look up a benchmark specification by its paper name."""
    try:
        return SUITE[name].spec()
    except KeyError:
        raise ValueError(f"unknown benchmark {name!r}; "
                         f"available: {sorted(SUITE)}") from None


def entries(tier: str = "default") -> List[BenchmarkEntry]:
    """Benchmarks of the given tier ("default") or all of them ("full")."""
    if tier == "full":
        return list(_ENTRIES)
    return [e for e in _ENTRIES if e.tier == "default"]


def table1_entries(tier: str = "default") -> List[BenchmarkEntry]:
    """Rows of Table 1 (every benchmark except the Table-3-only 4mod5)."""
    return [e for e in entries(tier) if e.name != "4mod5"]


def table2_entries(tier: str = "default") -> List[BenchmarkEntry]:
    """Rows of Table 2 (same set as Table 1)."""
    return table1_entries(tier)


def table3_entries(tier: str = "default") -> List[BenchmarkEntry]:
    """Rows of Table 3 (Table 1's set plus 4mod5)."""
    return list(entries(tier))
