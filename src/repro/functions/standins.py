"""Synthetic stand-ins for RevLib netlists unavailable offline.

The paper's mod5mils / mod5d1 / mod5d2 benchmarks are specific RevLib
circuit specifications we cannot retrieve without network access.  Each
stand-in is the permutation computed by a *fixed, seeded* random MCT
cascade of the appropriate width and length, so it exercises exactly the
same synthesis machinery at a comparable problem size; the exact minimal
depth is then whatever exact synthesis proves (at most the seed length).

DESIGN.md section 3 records the substitution; EXPERIMENTS.md reports the
paper's numbers for the original instances alongside our measurements on
the stand-ins.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.circuit import Circuit
from repro.core.library import mct_gates
from repro.core.spec import Specification

__all__ = ["seeded_mct_permutation", "standin"]


def seeded_mct_permutation(n_lines: int, n_gates: int, seed: int) -> Circuit:
    """A deterministic random MCT cascade (the stand-in generator).

    Consecutive duplicate gates are avoided so the seeded cascade has no
    trivially cancelling pair, keeping its minimal depth close to
    ``n_gates``.
    """
    rng = random.Random(seed)
    # The seeded draws index into this pool, so its order is part of each
    # stand-in's *definition*.  Sort by (target, #controls, controls) —
    # the enumeration order in effect when the stand-ins were fixed — so
    # a change to the library's code layout cannot silently redefine
    # benchmark instances.
    pool = sorted(mct_gates(n_lines),
                  key=lambda g: (g.target, len(g.controls),
                                 tuple(sorted(g.controls))))
    gates: List = []
    while len(gates) < n_gates:
        gate = rng.choice(pool)
        if gates and gate == gates[-1]:
            continue
        gates.append(gate)
    return Circuit(n_lines, gates)


def standin(name: str, n_lines: int, n_gates: int, seed: int) -> Specification:
    """Build a named stand-in specification from a seeded cascade."""
    circuit = seeded_mct_permutation(n_lines, n_gates, seed)
    return Specification.from_permutation(circuit.permutation(), name=name)
