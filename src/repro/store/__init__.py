"""repro.store — persistent, content-addressed synthesis results.

The BDD engine's headline property (one solve yields *all* minimal
networks) makes finished runs worth keeping: this package banks them on
disk so the suite scheduler, portfolio racers and repeated CLI calls
serve repeat configurations from cache instead of re-proving them.

Two tables, both keyed by :func:`~repro.store.digest.store_key` — a
SHA-256 of the specification rows (don't-cares included, name
excluded), the gate library content, the engine and every
answer-affecting option:

* the **result store** — minimal depth, every minimal circuit, quantum
  costs and the full canonical run record; a hit skips synthesis
  entirely and re-emits the original record byte-for-byte;
* the **bounds ledger** — the highest depth proven UNSAT per key;
  timeout-interrupted and cancelled runs bank their partial deepening,
  and the next run resumes from ``bound + 1`` instead of depth 0.

See ``docs/store.md`` for the on-disk layout, crash-safety guarantees
and GC policy, and ``python -m repro cache`` for the maintenance CLI.
"""

from repro.store.digest import (
    KEY_FORMAT,
    ORBIT_KEY_FORMAT,
    VOLATILE_OPTIONS,
    key_payload,
    library_payload,
    payload_digest,
    store_key,
)
from repro.store.merge import (
    MergeConflict,
    canonical_entry_bytes,
    merge_stores,
)
from repro.store.orbit import (
    OrbitKey,
    canonicalize,
    derive_store_key,
    fingerprint,
    find_witness,
    orbit_mode,
)
from repro.store.payload import (
    entry_from_result,
    hit_trace_record,
    result_from_entry,
    store_commit,
    store_lookup,
)
from repro.store.store import (
    CACHE_STATS_FORMAT,
    STORE_ENTRY_FORMAT,
    SynthesisStore,
    open_store,
)

__all__ = [
    "CACHE_STATS_FORMAT",
    "KEY_FORMAT",
    "MergeConflict",
    "ORBIT_KEY_FORMAT",
    "OrbitKey",
    "STORE_ENTRY_FORMAT",
    "SynthesisStore",
    "VOLATILE_OPTIONS",
    "canonical_entry_bytes",
    "canonicalize",
    "derive_store_key",
    "merge_stores",
    "entry_from_result",
    "fingerprint",
    "find_witness",
    "hit_trace_record",
    "key_payload",
    "library_payload",
    "open_store",
    "orbit_mode",
    "payload_digest",
    "result_from_entry",
    "store_commit",
    "store_key",
    "store_lookup",
]
