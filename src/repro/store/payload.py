"""Result <-> store-entry serialization, and the driver-facing hooks.

A store entry holds two things:

* the run's **canonical record** — the schema-valid JSONL run record
  with every volatile field stripped
  (:func:`repro.obs.runrecord.canonical_record`), which is exactly what
  a warm run re-emits to its trace file, byte for byte;
* the minimal **circuits**, serialized as RevLib ``.real`` text (the
  round-trip already proven by :mod:`repro.core.realfmt`), so a hit
  reconstructs a full :class:`~repro.synth.result.SynthesisResult`
  without touching an engine.

:func:`store_lookup` / :func:`store_commit` are the two integration
points shared by the serial driver and the speculative depth pipeline;
they also publish the ``store.*`` metrics.  Store metrics go to the
process registry only — never into ``result.metrics`` — so a cold run's
canonical record is identical with and without a store attached.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import repro.obs as obs
from repro.core.library import GateLibrary
from repro.core.realfmt import parse_real, write_real
from repro.core.spec import Specification
from repro.store.store import SynthesisStore
from repro.synth.result import DepthStat, SynthesisResult

__all__ = ["entry_from_result", "result_from_entry",
           "hit_trace_record", "store_lookup", "store_commit"]


def entry_from_result(result: SynthesisResult,
                      library: GateLibrary) -> Dict:
    """The committable store entry describing a finished run."""
    record = obs.canonical_record(obs.build_run_record(result, library))
    return {
        "record": record,
        "circuits": [write_real(circuit) for circuit in result.circuits],
    }


def result_from_entry(entry: Dict, spec: Specification) -> SynthesisResult:
    """Rebuild a :class:`SynthesisResult` from a store entry.

    The spec *name* comes from the requesting spec (names are not part
    of the address, so the committing run may have used another label);
    everything else — trajectory, metrics, circuits — is the stored
    computation.
    """
    record = entry["record"]
    result = SynthesisResult(
        engine=record["engine"],
        spec_name=spec.name or "anonymous",
        status=record["status"],
        depth=record.get("depth"),
        circuits=[parse_real(text)[0] for text in entry.get("circuits", ())],
        num_solutions=record.get("num_solutions"),
        quantum_cost_min=record.get("quantum_cost_min"),
        quantum_cost_max=record.get("quantum_cost_max"),
        solutions_truncated=record.get("solutions_truncated", False),
        incremental=record.get("incremental", False),
        metrics=dict(record.get("metrics", {})),
        store_hit=True,
    )
    result.per_depth = [
        DepthStat(depth=step["depth"], decision=step["decision"],
                  runtime=step["runtime"], detail=dict(step["detail"]),
                  metrics=dict(step["metrics"]),
                  timed_out=step["timed_out"])
        for step in record.get("per_depth", ())
    ]
    return result


def hit_trace_record(entry: Dict, result: SynthesisResult) -> Dict:
    """The trace record a cache hit appends: stored canonical + volatile.

    ``canonical_record()`` of this equals the stored record exactly —
    the property the ``store-smoke`` CI job pins.
    """
    record = dict(entry["record"])
    record["spec"] = result.spec_name
    record["runtime"] = result.runtime
    record["unix_time"] = time.time()
    record["store_hit"] = True
    return record


def store_lookup(store: SynthesisStore, key: str, spec: Specification,
                 engine: str, start_depth: int
                 ) -> Tuple[Optional[SynthesisResult], Dict, int]:
    """One cache consultation: (hit result or None, entry, start depth).

    On a result-store hit the reconstructed result is returned and
    synthesis is skipped entirely.  On a miss the proven-bound ledger
    may still raise the iterative-deepening start depth: the run
    resumes from ``bound + 1`` instead of re-refuting depths a previous
    (possibly timed-out) run already proved UNSAT.
    """
    with obs.span("cache", spec=spec.name or "anonymous", engine=engine):
        entry = store.get(key)
        if entry is not None:
            obs.publish({"store.hits": 1})
            obs.emit("store_hit", spec=spec.name or "anonymous",
                     engine=engine, key=key)
            return result_from_entry(entry, spec), entry, start_depth
        obs.publish({"store.misses": 1})
        bound = store.proven_bound(key)
        if bound is not None and bound + 1 > start_depth:
            store.counters["bound_resumes"] += 1
            obs.publish({"store.bound_resumes": 1})
            obs.emit("bound_resumed", spec=spec.name or "anonymous",
                     engine=engine, bound=bound, resumed_from=bound + 1)
            return None, {}, bound + 1
    return None, {}, start_depth


def store_commit(store: SynthesisStore, key: str,
                 result: SynthesisResult, library: GateLibrary,
                 start_depth: int) -> None:
    """Bank what a finished (or interrupted) run proved.

    Every run banks its contiguous UNSAT prefix into the ledger —
    including timeouts and cancellations, whose partial deepening is
    the whole point of the ledger.  Depths below ``start_depth`` are
    already proven (the admissible lower bound or a previous ledger
    entry is what moved the start), so the prefix extends from there.
    Definitive runs (``realized`` / ``gate_limit``) additionally commit
    a result entry; the commit is first-writer-wins under concurrency.
    """
    unsat_prefix = 0
    for step in result.per_depth:
        if step.decision != "unsat":
            break
        unsat_prefix += 1
    if store.bank_bound(key, start_depth + unsat_prefix - 1):
        obs.publish({"store.bounds_banked": 1})
    if result.status in ("realized", "gate_limit"):
        if store.put(key, entry_from_result(result, library)):
            obs.publish({"store.commits": 1})
