"""Result <-> store-entry serialization, and the driver-facing hooks.

A store entry holds two things:

* the run's **canonical record** — the schema-valid JSONL run record
  with every volatile field stripped
  (:func:`repro.obs.runrecord.canonical_record`), which is exactly what
  a warm run re-emits to its trace file, byte for byte;
* the minimal **circuits**, serialized as RevLib ``.real`` text (the
  round-trip already proven by :mod:`repro.core.realfmt`), so a hit
  reconstructs a full :class:`~repro.synth.result.SynthesisResult`
  without touching an engine.

:func:`store_lookup` / :func:`store_commit` are the two integration
points shared by the serial driver and the speculative depth pipeline;
they also publish the ``store.*`` metrics.  Store metrics go to the
process registry only — never into ``result.metrics`` — so a cold run's
canonical record is identical with and without a store attached.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple, Union

import repro.obs as obs
from repro.core.library import GateLibrary
from repro.core.realfmt import parse_real, write_real
from repro.core.spec import Specification
from repro.core.transform import OrbitTransform, UnsupportedTransform
from repro.store.orbit import (OrbitKey, find_witness, spec_cells,
                               table_from_cells)
from repro.store.store import SynthesisStore
from repro.synth.result import DepthStat, SynthesisResult

__all__ = ["entry_from_result", "result_from_entry",
           "hit_trace_record", "store_lookup", "store_commit"]


def _coerce_key(key: Union[str, OrbitKey]) -> OrbitKey:
    """Accept a plain literal key string anywhere an OrbitKey is used."""
    if isinstance(key, OrbitKey):
        return key
    return OrbitKey(key=key, bounds_key=key, mode="literal")


def entry_from_result(result: SynthesisResult,
                      library: GateLibrary) -> Dict:
    """The committable store entry describing a finished run."""
    record = obs.canonical_record(obs.build_run_record(result, library))
    return {
        "record": record,
        "circuits": [write_real(circuit) for circuit in result.circuits],
    }


def result_from_entry(entry: Dict, spec: Specification) -> SynthesisResult:
    """Rebuild a :class:`SynthesisResult` from a store entry.

    The spec *name* comes from the requesting spec (names are not part
    of the address, so the committing run may have used another label);
    everything else — trajectory, metrics, circuits — is the stored
    computation.
    """
    record = entry["record"]
    result = SynthesisResult(
        engine=record["engine"],
        spec_name=spec.name or "anonymous",
        status=record["status"],
        depth=record.get("depth"),
        circuits=[parse_real(text)[0] for text in entry.get("circuits", ())],
        num_solutions=record.get("num_solutions"),
        quantum_cost_min=record.get("quantum_cost_min"),
        quantum_cost_max=record.get("quantum_cost_max"),
        solutions_truncated=record.get("solutions_truncated", False),
        incremental=record.get("incremental", False),
        metrics=dict(record.get("metrics", {})),
        store_hit=True,
    )
    result.per_depth = [
        DepthStat(depth=step["depth"], decision=step["decision"],
                  runtime=step["runtime"], detail=dict(step["detail"]),
                  metrics=dict(step["metrics"]),
                  timed_out=step["timed_out"])
        for step in record.get("per_depth", ())
    ]
    return result


def hit_trace_record(entry: Dict, result: SynthesisResult) -> Dict:
    """The trace record a cache hit appends: stored canonical + volatile.

    ``canonical_record()`` of this equals the stored record exactly —
    the property the ``store-smoke`` CI job pins.
    """
    record = dict(entry["record"])
    record["spec"] = result.spec_name
    record["runtime"] = result.runtime
    record["unix_time"] = time.time()
    record["store_hit"] = True
    return record


def _replay_transform(key_info: OrbitKey, entry: Dict, spec: Specification
                      ) -> Optional[OrbitTransform]:
    """The frame rotation a hit must apply to the stored circuits.

    Identity for literal keys (and for same-frame orbit hits).  Exact
    mode composes the two precomputed witnesses — the committing run's
    (canonical -> stored frame, kept in the entry) and the caller's
    (canonical -> caller frame): ``W_caller o W_stored^-1`` maps the
    stored frame to the caller's.  Bucket mode searches for a witness
    between the two literal tables at hit time.  ``None`` means the
    entry cannot serve this request (malformed metadata, exhausted
    search budget or a cross-orbit bucket collision) — the caller
    degrades to a miss, which is always sound.
    """
    entry_orbit = entry.get("orbit")
    n = spec.n_lines
    if key_info.mode == "literal":
        # Literal keys address literal entries; orbit metadata never
        # appears under them (the key formats are disjoint).
        return OrbitTransform.identity(n)
    if not isinstance(entry_orbit, dict) \
            or entry_orbit.get("mode") != key_info.mode:
        return None
    if key_info.mode == "exact":
        stored_witness = OrbitTransform.from_payload(
            entry_orbit.get("witness") or {}, n)
        if stored_witness is None or key_info.witness is None:
            return None
        return key_info.witness.compose(stored_witness.inverse())
    stored_table = table_from_cells(entry_orbit.get("spec_cells") or "", n)
    if stored_table is None:
        return None
    return find_witness(stored_table, spec.permutation(), n,
                        "negate" in key_info.subgroup)


def _replayed_result(key_info: OrbitKey, entry: Dict, spec: Specification
                     ) -> Optional[Tuple[SynthesisResult, bool]]:
    """(result in the caller's frame, was-it-an-orbit-replay), or None.

    Same-frame hits reconstruct the stored circuits untouched — the
    byte-identity path the ``store-smoke`` CI job pins.  Cross-frame
    hits conjugate every stored circuit through the replay transform
    and re-verify each against the caller's spec
    (:func:`repro.verify.circuit_realizes`); any failure degrades the
    lookup to a miss rather than ever returning a wrong circuit.
    """
    replay = _replay_transform(key_info, entry, spec)
    if replay is None:
        return None
    result = result_from_entry(entry, spec)
    if replay.is_identity():
        return result, False
    from repro.verify import circuit_realizes
    try:
        circuits = [replay.apply_to_circuit(c) for c in result.circuits]
    except (UnsupportedTransform, ValueError):
        return None
    if any(not circuit_realizes(c, spec) for c in circuits):
        return None
    result.circuits = circuits
    return result, True


def store_lookup(store: SynthesisStore, key: Union[str, OrbitKey],
                 spec: Specification, engine: str, start_depth: int
                 ) -> Tuple[Optional[SynthesisResult], Dict, int]:
    """One cache consultation: (hit result or None, entry, start depth).

    On a result-store hit the reconstructed result is returned and
    synthesis is skipped entirely; orbit-keyed hits from a different
    frame additionally replay the stored circuits through the witness
    transform (verified gate for gate) and are counted as
    ``orbit_hits``.  On a miss the proven-bound ledger may still raise
    the iterative-deepening start depth: the run resumes from
    ``bound + 1`` instead of re-refuting depths a previous (possibly
    timed-out) run already proved UNSAT.
    """
    key_info = _coerce_key(key)
    spec_label = spec.name or "anonymous"
    with obs.span("cache", spec=spec_label, engine=engine):
        if key_info.mode != "literal":
            obs.publish({"store.orbit_canon_time": key_info.canon_time})
        entry = store.get(key_info.key)
        if entry is not None:
            replayed = _replayed_result(key_info, entry, spec)
            if replayed is not None:
                result, via_orbit = replayed
                obs.publish({"store.hits": 1})
                obs.emit("store_hit", spec=spec_label, engine=engine,
                         key=key_info.key)
                if via_orbit:
                    store._bump("orbit_hits")
                    obs.publish({"store.orbit_hits": 1})
                    obs.emit("orbit_hit", spec=spec_label, engine=engine,
                             mode=key_info.mode,
                             circuits=len(result.circuits))
                return result, entry, start_depth
            # The entry exists but cannot serve this frame (bucket
            # collision, exhausted witness budget, failed replay
            # verification): degrade to a miss.  store.get() already
            # counted a hit — rebook it.
            store._bump("hits", -1)
            store._bump("misses")
            store._bump("orbit_mismatches")
            obs.publish({"store.misses": 1, "store.orbit_mismatches": 1})
        else:
            obs.publish({"store.misses": 1})
        bound = store.proven_bound(key_info.bounds_key)
        if bound is not None and bound + 1 > start_depth:
            store._bump("bound_resumes")
            obs.publish({"store.bound_resumes": 1})
            obs.emit("bound_resumed", spec=spec_label,
                     engine=engine, bound=bound, resumed_from=bound + 1)
            return None, {}, bound + 1
    return None, {}, start_depth


def store_commit(store: SynthesisStore, key: Union[str, OrbitKey],
                 result: SynthesisResult, library: GateLibrary,
                 start_depth: int,
                 spec: Optional[Specification] = None) -> None:
    """Bank what a finished (or interrupted) run proved.

    Every run banks its contiguous UNSAT prefix into the ledger —
    including timeouts and cancellations, whose partial deepening is
    the whole point of the ledger.  Depths below ``start_depth`` are
    already proven (the admissible lower bound or a previous ledger
    entry is what moved the start), so the prefix extends from there.
    Definitive runs (``realized`` / ``gate_limit``) additionally commit
    a result entry; the commit is first-writer-wins under concurrency.

    Orbit-keyed commits carry the committing frame in the entry (the
    witness for exact mode, the literal spec cells for bucket mode) so
    later callers from other frames can rotate the circuits back.  The
    cold run itself always synthesized the literal caller spec — only
    the *address* is canonicalized — which keeps cold-run canonical
    records byte-identical with orbit canonicalization on and off.
    """
    key_info = _coerce_key(key)
    unsat_prefix = 0
    for step in result.per_depth:
        if step.decision != "unsat":
            break
        unsat_prefix += 1
    if store.bank_bound(key_info.bounds_key, start_depth + unsat_prefix - 1):
        obs.publish({"store.bounds_banked": 1})
    if result.status in ("realized", "gate_limit"):
        entry = entry_from_result(result, library)
        if key_info.mode != "literal" and spec is not None:
            orbit_meta: Dict = {"mode": key_info.mode,
                                "n_lines": spec.n_lines,
                                "spec_cells": spec_cells(spec.permutation(),
                                                         spec.n_lines)}
            if key_info.mode == "exact" and key_info.witness is not None:
                orbit_meta["witness"] = key_info.witness.to_payload()
            entry["orbit"] = orbit_meta
        if store.put(key_info.key, entry):
            obs.publish({"store.commits": 1})
