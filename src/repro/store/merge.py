"""Fold several synthesis stores into one (the fleet's sync-back step).

Merging is possible *because* the store's commit discipline already
assumes concurrent writers: result objects are content-addressed and
first-writer-wins, and the bounds ledger is monotone per key.  A merge
therefore reduces to replaying each source store's state against the
destination:

* **objects** — committed via :meth:`SynthesisStore.put`, so the first
  store to contribute a key wins and later copies are dropped;
* **duplicate keys** — are *verified*, not skipped blindly: store
  entries carry canonical run records (volatile fields already
  stripped), so two hosts that solved the same configuration must have
  byte-identical records.  A mismatch means a host computed a
  different answer for the same key — that is corruption or a bug, and
  the merge raises :class:`MergeConflict` instead of silently keeping
  one of them;
* **bounds** — folded through :meth:`SynthesisStore.bank_bound`, which
  keeps the max per key and ignores non-improving lines.

The replay is idempotent: merging the same source twice (or merging a
store into itself) changes nothing, which is what lets ``repro fleet
merge`` re-run after a partial failure.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Union

import repro.obs as obs
from repro.store.store import SynthesisStore, open_store

__all__ = ["MergeConflict", "canonical_entry_bytes", "merge_stores"]


class MergeConflict(RuntimeError):
    """Two stores committed *different* canonical records for one key."""

    def __init__(self, key: str, source_root: str):
        super().__init__(
            f"store merge conflict: key {key} in {source_root} carries a "
            f"canonical record different from the destination's — same "
            f"configuration, different answer")
        self.key = key
        self.source_root = source_root


def canonical_entry_bytes(entry: Dict) -> bytes:
    """The identity-comparable bytes of a store entry.

    Only the canonical run record participates: circuits may legally
    differ across hosts for engines that return one of several minimal
    realizations, but the canonical record (status, depth, gate count,
    canonical metrics) must not.
    """
    return json.dumps(entry.get("record"), sort_keys=True).encode("utf-8")


def merge_stores(dest: Union[str, SynthesisStore],
                 sources: Iterable[Union[str, SynthesisStore]],
                 check_identity: bool = True) -> Dict[str, int]:
    """Merge every source store into ``dest``; returns fold counters.

    ``check_identity=False`` skips the duplicate-key record comparison
    (for merging stores known to hold disjoint key sets, where reading
    back every duplicate would be wasted I/O — duplicates then only
    count as races).
    """
    destination = open_store(dest)
    counters = {"objects": 0, "duplicates": 0, "conflicts": 0, "bounds": 0,
                "sources": 0}
    for source in sources:
        source_store = open_store(source)
        if source_store.root == destination.root:
            continue  # self-merge is a no-op, not an error
        counters["sources"] += 1
        for key, _path, _mtime, _size in source_store._object_files():
            entry = source_store.get(key)
            if entry is None:
                continue  # quarantined under our feet — nothing to merge
            if destination.put(key, entry):
                counters["objects"] += 1
                continue
            counters["duplicates"] += 1
            if check_identity:
                existing = destination.get(key)
                if existing is not None and (canonical_entry_bytes(existing)
                                             != canonical_entry_bytes(entry)):
                    counters["conflicts"] += 1
                    raise MergeConflict(key, source_store.root)
        for key, depth in source_store._load_bounds().items():
            if destination.bank_bound(key, depth):
                counters["bounds"] += 1
    obs.publish({"fleet.merge_objects": counters["objects"],
                 "fleet.merge_duplicates": counters["duplicates"],
                 "fleet.merge_bounds": counters["bounds"]})
    return counters
