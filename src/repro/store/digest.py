"""Canonical store keys — content addressing for synthesis runs.

A store key is the SHA-256 digest of a deterministic byte serialization
of everything that determines a synthesis *answer*:

* the specification's truth rows including don't-cares (but **not** its
  ``name`` — two differently-labelled copies of the same function are
  the same cache entry),
* the gate library, serialized gate by gate (not by its display name,
  so custom libraries are addressed by content too),
* the engine name,
* the depth-range arguments (``max_gates``, ``use_bounds``) and every
  engine option that survives :data:`VOLATILE_OPTIONS` filtering.

Everything that merely schedules or observes the run — worker counts,
time limits, cancel tokens, trace paths — is excluded, mirroring
:data:`repro.obs.runrecord.VOLATILE_RECORD_FIELDS`: two runs with equal
keys compute byte-identical canonical run records.

The serialization is explicit bytes hashed with SHA-256, never Python's
builtin ``hash()``: the digest must agree between processes started
with different ``PYTHONHASHSEED`` values and across interpreter
versions, because the store outlives any single process.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Mapping, Optional, Union

from repro.core.library import GateLibrary
from repro.core.spec import Specification

__all__ = ["KEY_FORMAT", "ORBIT_KEY_FORMAT", "VOLATILE_OPTIONS",
           "gate_payload", "library_payload", "key_payload",
           "payload_digest", "store_key"]

KEY_FORMAT = "repro-store-key-v1"

#: Format tag of orbit-canonicalized keys (:mod:`repro.store.orbit`).
#: A distinct tag keeps the two key spaces disjoint: entries committed
#: under literal keys are never misread through an orbit witness and
#: vice versa.
ORBIT_KEY_FORMAT = "repro-store-key-orbit-v1"

#: Engine options that change how a run is *executed or observed* but
#: never which minimal networks it finds; they are excluded from the
#: store key so e.g. a cancelled-then-retried run still hits the entry
#: its first attempt would have written.
VOLATILE_OPTIONS = frozenset({"cancel_token"})


def gate_payload(gate) -> List:
    """JSON-ready canonical description of one gate.

    ``[kind, sorted controls, targets, sorted negative controls]`` —
    the same tuple that drives ``Gate.__eq__``, so two gates serialize
    identically iff they are equal.
    """
    negatives = sorted(getattr(gate, "negative_controls", ()))
    return [gate.kind, sorted(gate.controls), list(gate.targets), negatives]


def library_payload(library: GateLibrary) -> Dict:
    """Canonical description of a gate library (content, not name)."""
    return {
        "n_lines": library.n_lines,
        "gates": [gate_payload(g) for g in library.gates],
    }


def _canonical_options(engine_options: Optional[Mapping]) -> Dict:
    options = {k: v for k, v in dict(engine_options or {}).items()
               if k not in VOLATILE_OPTIONS}
    return options


def key_payload(spec: Specification,
                library: GateLibrary,
                engine: str,
                max_gates: Optional[int] = None,
                use_bounds: bool = False,
                engine_options: Optional[Mapping] = None) -> Dict:
    """The dict whose canonical JSON bytes are hashed into the key.

    Exposed separately from :func:`store_key` so tests (and debugging
    humans) can see exactly what is — and is not — part of the address.
    """
    return {
        "format": KEY_FORMAT,
        # Specification.content_digest() covers n_lines and the rows,
        # don't-cares included, and deliberately not the name; building
        # on it keeps __eq__, content_digest and store keys in lockstep.
        "spec": spec.content_digest(),
        "library": library_payload(library),
        "engine": engine,
        "max_gates": max_gates,
        "use_bounds": bool(use_bounds),
        "options": _canonical_options(engine_options),
    }


def store_key(spec: Specification,
              library: GateLibrary,
              engine: Union[str, object],
              max_gates: Optional[int] = None,
              use_bounds: bool = False,
              engine_options: Optional[Mapping] = None) -> str:
    """SHA-256 hex digest addressing one synthesis configuration."""
    if not isinstance(engine, str):
        raise ValueError(
            "store keys require an engine *name*: an engine instance "
            "carries pre-built state the key cannot faithfully serialize")
    payload = key_payload(spec, library, engine, max_gates=max_gates,
                          use_bounds=use_bounds,
                          engine_options=engine_options)
    return payload_digest(payload)


def payload_digest(payload: Dict) -> str:
    """SHA-256 hex digest of a key payload's canonical JSON bytes.

    sort_keys + tight separators: one canonical byte string per
    payload.  ``default=repr`` keeps exotic option values addressable
    (their repr had better be deterministic; the documented option
    surface is plain scalars).
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()
