"""Equivalence-orbit canonicalization of store keys.

The literal store key (:func:`repro.store.digest.store_key`) addresses
one truth table.  But the synthesis *answer* — minimal depth, solution
count, quantum-cost range, and the solution set up to conjugation — is
shared by the function's whole equivalence orbit under

* **line permutation** (relabel the circuit lines),
* **line negation**, conjugating by the *same* polarity mask on the
  input and output side (independent input/output masks would change
  gate counts — see :mod:`repro.core.transform`), and
* the **functional inverse** (reverse the cascade, invert each gate);

a group of order ``n! * 2^n * 2``.  This module maps a completely
specified spec to a canonical orbit representative and derives the
store key from *that*, so two relabeled/negated/inverted variants of
one function share a cache entry.  A **witness transform** records how
to rotate the stored circuits back into each caller's frame
(:func:`repro.store.payload.store_lookup` replays and re-verifies
them).

Three modes, chosen by :func:`derive_store_key`:

``exact`` (``n <= EXACT_MAX_LINES``)
    Full lex-min search over the orbit with early-abort comparison:
    every member canonicalizes to the identical representative, and the
    witness is computed up front.  Signed-permutation lookup maps are
    cached per width, so canonicalization costs well under a
    millisecond for the paper's 3-line benchmarks.

``bucket`` (``EXACT_MAX_LINES < n <= BUCKET_MAX_LINES``)
    Exhausting ``n! * 2^n`` transforms is no longer cheap, so the key
    is built from an orbit-invariant **fingerprint** (permutation cycle
    type, sorted per-line toggle counts, displacement popcount
    spectrum) and the witness is found *at hit time* by a pruned,
    budget-bounded search between the stored and requesting tables
    (:func:`find_witness`).  Distinct orbits may share a bucket; a
    failed witness search simply degrades the lookup to a miss — never
    a wrong answer.  The proven-bound ledger keeps using the literal
    key in this mode (a bucket collision must not leak a depth bound
    across orbits).

``literal``
    Byte-identical to :func:`store_key` — used for ``n`` beyond
    ``BUCKET_MAX_LINES``, incompletely specified specs, libraries that
    are not orbit-closed (:meth:`GateLibrary.closed_under_orbit`, e.g.
    Peres-only) and ``orbit=False``, so existing stores keep working
    unchanged.
"""

from __future__ import annotations

import hashlib
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.library import GateLibrary
from repro.core.spec import Specification
from repro.core.transform import LineTransform, OrbitTransform
from repro.core.truth_table import invert_permutation
from repro.store.digest import (ORBIT_KEY_FORMAT, key_payload,
                                payload_digest, store_key)

__all__ = ["BUCKET_MAX_LINES", "DEFAULT_MATCH_BUDGET", "EXACT_MAX_LINES",
           "OrbitKey", "canonicalize", "derive_store_key", "find_witness",
           "fingerprint", "orbit_mode", "spec_cells", "table_from_cells"]

#: Widest function canonicalized by exhaustive lex-min search.
EXACT_MAX_LINES = 4

#: Widest function addressed by fingerprint buckets; beyond this the
#: key falls back to the literal digest.
BUCKET_MAX_LINES = 6

#: Work cap (table-entry comparisons) for the hit-time witness search
#: in bucket mode.  Exceeding it turns the lookup into a miss; the cap
#: keeps a pathological (highly symmetric) 6-line lookup bounded.
DEFAULT_MATCH_BUDGET = 250_000


@dataclass
class OrbitKey:
    """Everything the store needs to address one synthesis request.

    ``key`` addresses the result store; ``bounds_key`` the proven-bound
    ledger (these differ only in bucket mode, where the fingerprint may
    collide across orbits and depth bounds must not leak).  ``witness``
    (exact mode) maps the canonical representative's frame to the
    caller's: ``caller_table == witness(canonical_table)``.
    """

    key: str
    bounds_key: str
    mode: str  # "literal" | "exact" | "bucket"
    witness: Optional[OrbitTransform] = None
    subgroup: Tuple[str, ...] = ()
    canon_time: float = 0.0


def orbit_mode(spec: Specification, library: GateLibrary,
               orbit: bool = True) -> str:
    """Which canonicalization mode a request is eligible for."""
    if not orbit or not spec.is_completely_specified() \
            or not library.closed_under_orbit():
        return "literal"
    if spec.n_lines <= EXACT_MAX_LINES:
        return "exact"
    if spec.n_lines <= BUCKET_MAX_LINES:
        return "bucket"
    return "literal"


# -- spec cells (entry metadata) ----------------------------------------------

def spec_cells(table: Sequence[int], n: int) -> str:
    """The row-major cell string of a complete table (cf. canonical_bytes)."""
    return "".join(str((table[i] >> line) & 1)
                   for i in range(1 << n) for line in range(n))


def table_from_cells(cells: str, n: int) -> Optional[Tuple[int, ...]]:
    """Invert :func:`spec_cells`; None when the string is malformed."""
    rows = 1 << n
    if len(cells) != rows * n or set(cells) - {"0", "1"}:
        return None
    return tuple(sum((cells[i * n + line] == "1") << line
                     for line in range(n))
                 for i in range(rows))


# -- orbit-invariant fingerprint ----------------------------------------------

def _line_toggle_counts(table: Sequence[int], n: int) -> List[int]:
    """Per-line count of inputs whose output toggles that line.

    Conjugating by a mask cancels it out of ``x ^ T(x)``, so the counts
    are negation-invariant; a line permutation permutes them and the
    inverse arm preserves them — which makes the *sorted* counts a
    fingerprint component and the raw counts a pruning table for
    :func:`find_witness` (line ``i`` can only map to a line with the
    same count).
    """
    counts = [0] * n
    for x, out in enumerate(table):
        diff = x ^ out
        while diff:
            low = diff & -diff
            counts[low.bit_length() - 1] += 1
            diff ^= low
    return counts


def fingerprint(table: Sequence[int], n: int) -> Tuple:
    """An orbit invariant of a complete truth table.

    Components (each invariant under conjugation by signed line
    permutations and under the functional inverse):

    * the sorted cycle type of the ``2^n``-point permutation,
    * the sorted per-line toggle counts,
    * the histogram of ``popcount(x ^ T(x))`` over all inputs.
    """
    rows = 1 << n
    seen = bytearray(rows)
    cycles: List[int] = []
    for start in range(rows):
        if seen[start]:
            continue
        length = 0
        x = start
        while not seen[x]:
            seen[x] = 1
            x = table[x]
            length += 1
        cycles.append(length)
    cycles.sort()
    displacement = [0] * (n + 1)
    for x, out in enumerate(table):
        displacement[(x ^ out).bit_count()] += 1
    return (n, tuple(cycles), tuple(sorted(_line_toggle_counts(table, n))),
            tuple(displacement))


# -- exact canonicalization ---------------------------------------------------

#: (n, use_negation) -> [(perm, mask, lmap, linv)] for every signed
#: permutation, in deterministic enumeration order.  The maps depend
#: only on the width, so they are shared across all canonicalizations.
_SIGNED_MAPS: Dict[Tuple[int, bool], List] = {}


def _signed_maps(n: int, use_negation: bool) -> List:
    cached = _SIGNED_MAPS.get((n, use_negation))
    if cached is not None:
        return cached
    rows = 1 << n
    maps = []
    for perm in itertools.permutations(range(n)):
        pmap = [0] * rows
        for x in range(rows):
            y = 0
            for i in range(n):
                y |= ((x >> i) & 1) << perm[i]
            pmap[x] = y
        for mask in range(rows) if use_negation else (0,):
            # L(x) = P(x ^ mask): negate first, then relabel.
            lmap = [pmap[x ^ mask] for x in range(rows)]
            linv = [0] * rows
            for x, y in enumerate(lmap):
                linv[y] = x
            maps.append((perm, mask, lmap, linv))
    _SIGNED_MAPS[(n, use_negation)] = maps
    return maps


def canonicalize(table: Sequence[int], n: int, use_negation: bool
                 ) -> Tuple[Tuple[int, ...], OrbitTransform]:
    """The lex-min orbit representative and the witness back to ``table``.

    Returns ``(canonical, witness)`` with
    ``witness.apply_to_table(canonical) == tuple(table)``.  The search
    enumerates every orbit element ``S o T^e o S^-1`` in a fixed order
    (forward arm first, then the inverse; signed permutations in
    enumeration order) and keeps the lexicographically smallest table —
    comparisons abort at the first differing entry, so the common case
    touches one or two entries per candidate.
    """
    rows = 1 << n
    table = tuple(table)
    best: Optional[Tuple[int, ...]] = None
    best_transform = None
    for invert in (False, True):
        base = invert_permutation(table) if invert else table
        for perm, mask, lmap, linv in _signed_maps(n, use_negation):
            if best is None:
                best = tuple(lmap[base[linv[y]]] for y in range(rows))
                best_transform = (perm, mask, invert)
                continue
            for y in range(rows):
                value = lmap[base[linv[y]]]
                if value > best[y]:
                    break
                if value < best[y]:
                    best = tuple(lmap[base[linv[y]]] for y in range(rows))
                    best_transform = (perm, mask, invert)
                    break
    perm, mask, invert = best_transform
    # best == W(table) with W = (S, invert); the stored witness maps the
    # canonical frame back to the caller's: table == W^-1(best).
    witness = OrbitTransform(LineTransform(n, perm, mask), invert).inverse()
    return best, witness


# -- bucket-mode witness search -----------------------------------------------

def find_witness(stored: Sequence[int], caller: Sequence[int], n: int,
                 use_negation: bool,
                 budget: int = DEFAULT_MATCH_BUDGET
                 ) -> Optional[OrbitTransform]:
    """A transform ``W`` with ``caller == W(stored)``, or None.

    Deterministic pruned search used by bucket-mode hits: candidate
    line permutations must match the per-line toggle counts, and each
    (permutation, mask, arm) candidate is checked entry by entry with
    early abort.  The work is capped by ``budget`` comparisons — on
    exhaustion (or a genuine cross-orbit bucket collision) the caller
    treats the lookup as a miss, which is always sound.
    """
    rows = 1 << n
    stored = tuple(stored)
    caller = tuple(caller)
    toggles_caller = _line_toggle_counts(caller, n)
    ops = 0
    for invert in (False, True):
        base = invert_permutation(stored) if invert else stored
        toggles_base = _line_toggle_counts(base, n)
        for perm in itertools.permutations(range(n)):
            if any(toggles_caller[perm[i]] != toggles_base[i]
                   for i in range(n)):
                continue
            pmap = [0] * rows
            for x in range(rows):
                y = 0
                for i in range(n):
                    y |= ((x >> i) & 1) << perm[i]
                pmap[x] = y
            ops += rows
            for mask in range(rows) if use_negation else (0,):
                matched = True
                for x in range(rows):
                    ops += 1
                    # caller(L(x)) == L(base(x)) with L(x) = P(x ^ m)
                    if caller[pmap[x ^ mask]] != pmap[base[x] ^ mask]:
                        matched = False
                        break
                if matched:
                    return OrbitTransform(LineTransform(n, perm, mask),
                                          invert)
                if ops > budget:
                    return None
            if ops > budget:
                return None
    return None


# -- key derivation -----------------------------------------------------------

def _canonical_table_digest(table: Sequence[int], n: int) -> str:
    blob = (f"repro-orbit-canon-v1:{n}:"
            + ",".join(str(v) for v in table)).encode("ascii")
    return hashlib.sha256(blob).hexdigest()


def derive_store_key(spec: Specification,
                     library: GateLibrary,
                     engine: Union[str, object],
                     max_gates: Optional[int] = None,
                     use_bounds: bool = False,
                     engine_options: Optional[Mapping] = None,
                     orbit: bool = True) -> OrbitKey:
    """The orbit-aware store address for one synthesis configuration.

    With ``orbit=False`` (or whenever :func:`orbit_mode` degrades) the
    returned key is byte-identical to :func:`store_key`; otherwise the
    key addresses the whole equivalence orbit, with the literal payload
    fields (library content, engine, options, depth-range arguments)
    unchanged so only same-configuration requests can ever share an
    entry.
    """
    start = time.perf_counter()
    literal = store_key(spec, library, engine, max_gates=max_gates,
                        use_bounds=use_bounds, engine_options=engine_options)
    mode = orbit_mode(spec, library, orbit=orbit)
    if mode == "literal":
        return OrbitKey(key=literal, bounds_key=literal, mode="literal",
                        canon_time=time.perf_counter() - start)
    closure = library.orbit_closure()
    use_negation = "negate" in closure
    subgroup = tuple(sorted(
        {"permute", "invert"} | ({"negate"} if use_negation else set())))
    n = spec.n_lines
    table = spec.permutation()
    payload = key_payload(spec, library, engine, max_gates=max_gates,
                          use_bounds=use_bounds,
                          engine_options=engine_options)
    payload["format"] = ORBIT_KEY_FORMAT
    witness = None
    if mode == "exact":
        canonical, witness = canonicalize(table, n, use_negation)
        payload["spec"] = _canonical_table_digest(canonical, n)
        payload["orbit"] = {"mode": "exact", "subgroup": list(subgroup)}
        key = payload_digest(payload)
        bounds_key = key
    else:
        payload["spec"] = None
        payload["orbit"] = {"mode": "bucket", "subgroup": list(subgroup),
                            "fingerprint": [list(part) if isinstance(part, tuple)
                                            else part
                                            for part in fingerprint(table, n)]}
        key = payload_digest(payload)
        bounds_key = literal
    return OrbitKey(key=key, bounds_key=bounds_key, mode=mode,
                    witness=witness, subgroup=subgroup,
                    canon_time=time.perf_counter() - start)
