"""The persistent synthesis store: result objects + proven-bound ledger.

On-disk layout under one root directory (see ``docs/store.md``)::

    <root>/
      objects/<k0k1>/<key>.json   one finished run per file (content-
                                  addressed by the store key; the two-
                                  character fan-out keeps directories small)
      index.jsonl                 append-only index of committed results
                                  (one summary line per object; advisory —
                                  the objects directory is authoritative)
      bounds.jsonl                append-only proven-bound ledger: the
                                  highest depth proven UNSAT per key
      quarantine/                 corrupt object files, moved aside
                                  instead of crashing the reader

Crash safety:

* result objects are written to a temp file in the same directory,
  fsynced, then linked into place — a torn write can never be observed
  under the final name, and :func:`os.link` onto an existing name makes
  commits **first-writer-wins** (the loser's bytes are discarded;
  identical keys compute identical answers, so nothing is lost);
* ledger and index lines go through the same single-``os.write``
  ``O_APPEND`` appends as JSONL run records
  (:func:`repro.obs.runrecord.append_jsonl_line`), so concurrent suite
  workers interleave whole lines, never fragments;
* readers tolerate torn trailing lines (power loss) by skipping them,
  and a result object that fails to parse or fails its checksum is
  moved to ``quarantine/`` and treated as a miss — the store never
  raises on corrupt state it can route around.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.runrecord import append_jsonl_line, read_jsonl

__all__ = ["CACHE_STATS_FORMAT", "STORE_ENTRY_FORMAT", "SynthesisStore",
           "open_store"]

STORE_ENTRY_FORMAT = "repro-store-entry-v1"

#: Format tag of the machine-readable stats payload
#: (``repro cache stats --json`` and the serve daemon's ``stats`` RPC).
CACHE_STATS_FORMAT = "repro-cache-stats-v1"

#: Default size of the in-memory LRU front (entries, not bytes).
DEFAULT_LRU_ENTRIES = 128


def open_store(store: Union[str, "SynthesisStore"]) -> "SynthesisStore":
    """Coerce a path-or-store argument to a :class:`SynthesisStore`."""
    if isinstance(store, SynthesisStore):
        return store
    return SynthesisStore(str(store))


class SynthesisStore:
    """Disk-backed, content-addressed cache of finished synthesis runs.

    One instance wraps one root directory; many processes may share the
    directory concurrently (suite workers, portfolio racers): object
    commits are first-writer-wins and ledger appends are atomic lines.
    Per-instance counters (``hits``/``misses``/...) describe *this
    process's* traffic; :meth:`stats` combines them with the on-disk
    totals.

    One instance may also be shared between *threads* (the serve daemon
    runs one synthesis per worker thread against a single store): the
    in-memory LRU front, the traffic counters and the cached ledger
    view are lock-protected.  Disk I/O happens outside the lock — the
    on-disk formats are already safe under concurrent writers.
    """

    def __init__(self, root: str, lru_entries: int = DEFAULT_LRU_ENTRIES):
        self._lock = threading.Lock()
        self.root = os.path.abspath(root)
        self.objects_dir = os.path.join(self.root, "objects")
        self.quarantine_dir = os.path.join(self.root, "quarantine")
        self.index_path = os.path.join(self.root, "index.jsonl")
        self.bounds_path = os.path.join(self.root, "bounds.jsonl")
        os.makedirs(self.objects_dir, exist_ok=True)
        self._lru: "OrderedDict[str, Dict]" = OrderedDict()
        self._lru_entries = max(0, lru_entries)
        self._bounds: Optional[Dict[str, int]] = None
        self.counters: Dict[str, int] = {
            "hits": 0, "misses": 0, "commits": 0, "commit_races": 0,
            "bounds_banked": 0, "bound_resumes": 0, "quarantined": 0,
            "orbit_hits": 0, "orbit_mismatches": 0,
        }

    # -- result store ---------------------------------------------------------

    def _object_path(self, key: str) -> str:
        return os.path.join(self.objects_dir, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[Dict]:
        """The committed entry payload for ``key``, or None on a miss.

        Corrupt entries (unparseable JSON, wrong format tag, key
        mismatch from a mangled rename) are quarantined and reported as
        misses — a torn file must never take down a synthesis run.
        """
        with self._lock:
            cached = self._lru.get(key)
            if cached is not None:
                self._lru.move_to_end(key)
                self.counters["hits"] += 1
                return cached
        path = self._object_path(key)
        try:
            with open(path, "rb") as handle:
                payload = json.loads(handle.read())
            if (not isinstance(payload, dict)
                    or payload.get("format") != STORE_ENTRY_FORMAT
                    or payload.get("key") != key):
                raise ValueError("malformed store entry")
        except FileNotFoundError:
            self._bump("misses")
            return None
        except (ValueError, OSError):
            self._quarantine(path)
            self._bump("misses")
            return None
        with self._lock:
            self._remember(key, payload)
            self.counters["hits"] += 1
        return payload

    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[counter] += amount

    def put(self, key: str, entry: Dict) -> bool:
        """Commit an entry under ``key``; returns False for a lost race.

        First-writer-wins: when the final name already exists (another
        worker finished the same configuration first) the new bytes are
        dropped.  The write path is temp file + fsync + hard link, so a
        crash mid-commit leaves at most an orphan temp file, never a
        half-written object.
        """
        entry = dict(entry)
        entry["format"] = STORE_ENTRY_FORMAT
        entry["key"] = key
        path = self._object_path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        data = json.dumps(entry, sort_keys=True).encode("utf-8")
        fd, tmp_path = tempfile.mkstemp(prefix=".commit-", dir=directory)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        try:
            os.link(tmp_path, path)
        except FileExistsError:
            self._bump("commit_races")
            return False
        finally:
            os.unlink(tmp_path)
        with self._lock:
            self._remember(key, entry)
            self.counters["commits"] += 1
        record = entry.get("record") or {}
        append_jsonl_line(self.index_path, {
            "key": key,
            "spec": record.get("spec", "?"),
            "engine": record.get("engine", "?"),
            "status": record.get("status", "?"),
            "depth": record.get("depth"),
            "bytes": len(data),
            "unix_time": time.time(),
        })
        return True

    def _remember(self, key: str, payload: Dict) -> None:
        # Caller holds self._lock.
        if self._lru_entries == 0:
            return
        self._lru[key] = payload
        self._lru.move_to_end(key)
        while len(self._lru) > self._lru_entries:
            self._lru.popitem(last=False)

    def _quarantine(self, path: str) -> None:
        os.makedirs(self.quarantine_dir, exist_ok=True)
        target = os.path.join(
            self.quarantine_dir,
            f"{int(time.time())}-{os.path.basename(path)}")
        try:
            os.replace(path, target)
        except OSError:
            pass  # someone else quarantined it first — equally gone
        self._bump("quarantined")

    # -- proven-bound ledger --------------------------------------------------

    def _load_bounds(self) -> Dict[str, int]:
        with self._lock:
            if self._bounds is None:
                bounds: Dict[str, int] = {}
                if os.path.exists(self.bounds_path):
                    lines, _torn = read_jsonl(self.bounds_path)
                    for line in lines:
                        key = line.get("key")
                        depth = line.get("unsat_through")
                        if isinstance(key, str) and isinstance(depth, int):
                            if depth > bounds.get(key, -1):
                                bounds[key] = depth
                self._bounds = bounds
            return self._bounds

    def reload_bounds(self) -> None:
        """Drop the cached ledger view (pick up other processes' banks)."""
        with self._lock:
            self._bounds = None

    def proven_bound(self, key: str) -> Optional[int]:
        """Highest depth proven UNSAT for ``key`` (inclusive), if any."""
        bounds = self._load_bounds()
        with self._lock:
            return bounds.get(key)

    def bank_bound(self, key: str, unsat_through: int) -> bool:
        """Record that every depth ``<= unsat_through`` is UNSAT.

        Appends one ledger line when the bound improves on what the
        ledger already holds; timeout-interrupted and cancelled runs
        call this so their partial deepening is never recomputed.
        """
        if unsat_through < 0:
            return False
        bounds = self._load_bounds()
        with self._lock:
            if unsat_through <= bounds.get(key, -1):
                return False
            # The append happens under the lock so two threads banking
            # the same key stay monotone within this process; ledger
            # appends are single-write lines, so cross-process
            # interleavings remain whole-line as before.
            append_jsonl_line(self.bounds_path,
                              {"key": key, "unsat_through": unsat_through,
                               "unix_time": time.time()})
            bounds[key] = unsat_through
            self.counters["bounds_banked"] += 1
        return True

    # -- maintenance ----------------------------------------------------------

    def _object_files(self) -> List[Tuple[str, str, float, int]]:
        """(key, path, mtime, bytes) for every committed object."""
        found = []
        for fan in sorted(os.listdir(self.objects_dir)):
            fan_dir = os.path.join(self.objects_dir, fan)
            if not os.path.isdir(fan_dir):
                continue
            for name in sorted(os.listdir(fan_dir)):
                if not name.endswith(".json") or name.startswith("."):
                    continue
                path = os.path.join(fan_dir, name)
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                found.append((name[:-5], path, status.st_mtime,
                              status.st_size))
        return found

    def entries(self) -> Iterator[Dict]:
        """Index lines for every *live* object (committed, not GC'd)."""
        live = {key for key, _, _, _ in self._object_files()}
        seen = set()
        if os.path.exists(self.index_path):
            lines, _torn = read_jsonl(self.index_path)
            for line in lines:
                key = line.get("key")
                if key in live and key not in seen:
                    seen.add(key)
                    yield line
        for key, path, mtime, size in self._object_files():
            if key not in seen:  # index line lost (crash between writes)
                yield {"key": key, "bytes": size, "unix_time": mtime}

    def stats(self) -> Dict[str, object]:
        """On-disk totals plus this process's traffic counters."""
        files = self._object_files()
        quarantined = 0
        if os.path.isdir(self.quarantine_dir):
            quarantined = len(os.listdir(self.quarantine_dir))
        bound_keys = len(self._load_bounds())
        with self._lock:
            lru_entries = len(self._lru)
            session = dict(self.counters)
        return {
            "root": self.root,
            "results": len(files),
            "result_bytes": sum(size for _, _, _, size in files),
            "bound_keys": bound_keys,
            "quarantined_files": quarantined,
            "lru_entries": lru_entries,
            "session": session,
        }

    def stats_payload(self) -> Dict[str, object]:
        """:meth:`stats` wrapped in a versioned machine-readable envelope.

        This exact payload is what ``repro cache stats --json`` prints
        and what the serve daemon returns for the ``stats`` RPC's
        ``store`` section, so operators and scripts parse one format.
        """
        payload: Dict[str, object] = {"format": CACHE_STATS_FORMAT}
        payload.update(self.stats())
        return payload

    def gc(self, max_bytes: int) -> Dict[str, int]:
        """Shrink the result store under ``max_bytes`` (oldest first).

        Also compacts the append-only index and ledger: the index is
        rewritten to the surviving objects and the ledger to one line
        per key.  Proven bounds are *kept* for evicted results — they
        are tiny and make a re-run of an evicted entry resume instead
        of restart.
        """
        files = sorted(self._object_files(), key=lambda item: item[2])
        total = sum(size for _, _, _, size in files)
        removed = 0
        removed_bytes = 0
        for key, path, _mtime, size in files:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            with self._lock:
                self._lru.pop(key, None)
            total -= size
            removed += 1
            removed_bytes += size
        self._rewrite_index()
        self._compact_bounds()
        return {"removed": removed, "removed_bytes": removed_bytes,
                "kept": len(files) - removed, "kept_bytes": total}

    def clear(self) -> None:
        """Drop every result, bound, index line and quarantined file."""
        for _key, path, _mtime, _size in self._object_files():
            try:
                os.unlink(path)
            except OSError:
                pass
        for path in (self.index_path, self.bounds_path):
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
        if os.path.isdir(self.quarantine_dir):
            for name in os.listdir(self.quarantine_dir):
                try:
                    os.unlink(os.path.join(self.quarantine_dir, name))
                except OSError:
                    pass
        with self._lock:
            self._lru.clear()
            self._bounds = {}

    def _replace_jsonl(self, path: str, lines: List[Dict]) -> None:
        fd, tmp_path = tempfile.mkstemp(prefix=".rewrite-", dir=self.root)
        try:
            payload = "".join(json.dumps(line, sort_keys=True) + "\n"
                              for line in lines)
            os.write(fd, payload.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp_path, path)

    def _rewrite_index(self) -> None:
        self._replace_jsonl(self.index_path, list(self.entries()))

    def _compact_bounds(self) -> None:
        bounds = self._load_bounds()
        self._replace_jsonl(
            self.bounds_path,
            [{"key": key, "unsat_through": depth}
             for key, depth in sorted(bounds.items())])
