"""repro — reproduction of "Quantified Synthesis of Reversible Logic" (DATE'08).

Exact synthesis of reversible logic via quantified Boolean formulas,
solved either on BDDs (the paper's fast engine, yielding *all* minimal
networks) or by a QBF solver, compared against SAT-based and specialized
search baselines.  Everything — the ROBDD package, the CDCL SAT solver,
the QBF solvers and the reversible-logic core — is implemented here from
scratch in pure Python.

Quick start::

    from repro import Specification, synthesize

    spec = Specification.from_permutation([7, 1, 4, 3, 0, 2, 6, 5],
                                          name="3_17")
    result = synthesize(spec, kinds=("mct",), engine="bdd")
    print(result.summary())          # D=6, all 7 minimal networks
    print(result.circuit.to_string())  # the cheapest one (quantum cost)
"""

from repro.core import (
    Circuit,
    Fredkin,
    Gate,
    GateLibrary,
    InversePeres,
    Peres,
    Specification,
    Toffoli,
    embed_function,
    embed_truth_table,
)
from repro.functions import get_spec
from repro.synth import SynthesisResult, synthesize

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "Fredkin",
    "Gate",
    "GateLibrary",
    "InversePeres",
    "Peres",
    "Specification",
    "SynthesisResult",
    "Toffoli",
    "__version__",
    "embed_function",
    "embed_truth_table",
    "get_spec",
    "synthesize",
]
