"""Brute-force QBF evaluation — the correctness oracle for the solvers.

Walks the quantifier prefix recursively, trying both values of every
variable: OR semantics for existential variables, AND semantics for
universal ones.  Exponential, only for tests and tiny instances.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.qbf.qcnf import QuantifiedCnf

__all__ = ["brute_force_qbf"]


def brute_force_qbf(formula: QuantifiedCnf) -> Tuple[bool, Optional[Dict[int, bool]]]:
    """Evaluate the QBF; returns (truth, outer-existential model or None).

    The model covers the leading existential block only — the part that
    is meaningful as a certificate (for the synthesis encoding: the gate
    selections).  When the matrix becomes satisfied before every outer
    variable is branched on, unassigned outer variables default to
    False (any completion works).
    """
    order = formula.variables_in_order()
    clauses = formula.cnf.clauses
    outer_block = formula.outer_existential_block()
    assignment: Dict[int, bool] = {}
    witness: Dict[int, bool] = {}

    def clauses_status() -> Optional[bool]:
        """True = all satisfied, False = some clause falsified, None = open."""
        all_satisfied = True
        for clause in clauses:
            satisfied = False
            undecided = False
            for lit in clause:
                var = abs(lit)
                value = assignment.get(var)
                if value is None:
                    undecided = True
                elif (lit > 0) == value:
                    satisfied = True
                    break
            if not satisfied:
                if not undecided:
                    return False
                all_satisfied = False
        return True if all_satisfied else None

    def rec(depth: int) -> bool:
        status = clauses_status()
        if status is not None:
            return status
        if depth == len(order):
            return True
        var = order[depth]
        if formula.is_existential(var):
            for value in (False, True):
                assignment[var] = value
                result = rec(depth + 1)
                del assignment[var]
                if result:
                    return True
            return False
        for value in (False, True):
            assignment[var] = value
            result = rec(depth + 1)
            del assignment[var]
            if not result:
                return False
        return True

    def solve_outer(depth: int) -> bool:
        """Branch the leading existential block, recording the witness.

        ``outer_block`` is always a prefix of ``order``, so depth indexes
        line up with :func:`rec`.
        """
        if depth == len(outer_block):
            return rec(depth)
        var = order[depth]
        for value in (False, True):
            assignment[var] = value
            success = solve_outer(depth + 1)
            del assignment[var]
            if success:
                witness[var] = value
                return True
        return False

    if solve_outer(0):
        return True, {v: witness.get(v, False) for v in outer_block}
    return False, None
