"""Prenex quantified CNF (QCNF) formulas.

A QBF in prenex normal form is ``Q_1 V_1 ... Q_t V_t . phi`` with ``phi``
a CNF over the quantified variables (Section 2.2 of the paper).  Blocks
alternate freely; variables missing from the prefix are treated as
outermost existentials (free variables).

Quantifier *levels* number the blocks from the outside in, starting at 0;
they drive universal reduction and the QDPLL unit rule.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sat.cnf import Cnf

__all__ = ["QuantifiedCnf", "EXISTS", "FORALL"]

EXISTS = "e"
FORALL = "a"


class QuantifiedCnf:
    """A prenex QCNF: quantifier prefix plus CNF matrix."""

    __slots__ = ("cnf", "prefix", "_block_of", "_quant_of")

    def __init__(self, prefix: Sequence[Tuple[str, Sequence[int]]], cnf: Cnf):
        normalized: List[Tuple[str, Tuple[int, ...]]] = []
        seen: Dict[int, int] = {}
        for quantifier, variables in prefix:
            if quantifier not in (EXISTS, FORALL):
                raise ValueError(f"unknown quantifier {quantifier!r}")
            block = tuple(variables)
            for var in block:
                if not 1 <= var <= cnf.num_vars:
                    raise ValueError(f"prefix variable {var} outside CNF range")
                if var in seen:
                    raise ValueError(f"variable {var} quantified twice")
                seen[var] = len(normalized)
            if block:
                normalized.append((quantifier, block))
        # Free variables become an implicit outermost existential block.
        free = tuple(v for v in range(1, cnf.num_vars + 1) if v not in seen)
        if free:
            normalized.insert(0, (EXISTS, free))
            seen = {}
            for index, (_, block) in enumerate(normalized):
                for var in block:
                    seen[var] = index
        self.prefix: Tuple[Tuple[str, Tuple[int, ...]], ...] = tuple(normalized)
        self.cnf = cnf
        self._block_of = seen
        self._quant_of = {var: self.prefix[idx][0] for var, idx in seen.items()}

    # -- queries -------------------------------------------------------------------

    def level(self, var: int) -> int:
        """Block index of the variable (0 = outermost)."""
        return self._block_of[var]

    def quantifier(self, var: int) -> str:
        return self._quant_of[var]

    def is_existential(self, var: int) -> bool:
        return self._quant_of[var] == EXISTS

    def is_universal(self, var: int) -> bool:
        return self._quant_of[var] == FORALL

    def variables_in_order(self) -> List[int]:
        """All variables, outermost block first."""
        ordered: List[int] = []
        for _, block in self.prefix:
            ordered.extend(block)
        return ordered

    def outer_existential_block(self) -> Tuple[int, ...]:
        """Variables of the leading existential block (empty if none).

        For the synthesis encoding these are the gate-select inputs
        ``Y``, whose satisfying assignment is the network realization.
        """
        if self.prefix and self.prefix[0][0] == EXISTS:
            return self.prefix[0][1]
        return ()

    def num_blocks(self) -> int:
        return len(self.prefix)

    def __repr__(self) -> str:
        shape = " ".join(f"{q}{len(block)}" for q, block in self.prefix)
        return (f"QuantifiedCnf(prefix=[{shape}], vars={self.cnf.num_vars}, "
                f"clauses={len(self.cnf.clauses)})")
