"""Expansion-based QBF solving (universal expansion to SAT).

The flavour of solver skizzo [2, 3] belongs to: instead of searching the
prefix, universal quantifiers are eliminated symbolically.  Expanding a
universal variable ``u`` replaces the matrix ``phi`` by
``phi[u=0] AND phi[u=1]`` where all variables quantified *inner* to ``u``
are renamed to fresh copies in the ``u=1`` half (they may be Skolemized
differently on each universal branch).  Once every universal variable is
expanded the formula is purely existential and a single CDCL call decides
it.

Expanding the synthesis encoding ``exists Y forall X exists A . phi``
duplicates the circuit constraints once per assignment of the ``n``
inputs — exactly the exponential 2^n blow-up of the SAT baseline the QBF
formulation avoids.  Ablation A2 measures this.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.qbf.qcnf import EXISTS, FORALL, QuantifiedCnf
from repro.qbf.qdpll import QbfResult
from repro.sat.cdcl import solve_cnf
from repro.sat.cnf import Cnf

__all__ = ["ExpansionBudgetExceeded", "expand_to_cnf", "solve_qbf_by_expansion"]

Clause = Tuple[int, ...]


class ExpansionBudgetExceeded(Exception):
    """Raised when universal expansion grows past the configured budget."""


def expand_to_cnf(formula: QuantifiedCnf,
                  max_clauses: Optional[int] = None,
                  tick: Optional[Callable[[], None]] = None
                  ) -> Tuple[Cnf, List[int]]:
    """Expand all universal variables; returns (CNF, outer existential vars).

    The returned CNF is over the surviving existential variables (original
    outer ones keep their indices, inner ones gain renamed copies).  A
    model of it restricted to the outer block is a certificate for the
    original QBF.

    ``tick`` is invoked once per eliminated universal variable and may
    raise to abort the (potentially exponential) expansion early — the
    parallel layer uses it for cooperative cancellation.
    """
    clauses: List[Clause] = [tuple(c) for c in formula.cnf.clauses]
    next_var = formula.cnf.num_vars
    # blocks, outermost first; mutated as universals are eliminated
    blocks: List[Tuple[str, List[int]]] = [
        (quantifier, list(variables)) for quantifier, variables in formula.prefix
    ]

    def innermost_universal() -> Optional[int]:
        for index in range(len(blocks) - 1, -1, -1):
            if blocks[index][0] == FORALL and blocks[index][1]:
                return index
        return None

    while True:
        if tick is not None:
            tick()
        block_index = innermost_universal()
        if block_index is None:
            break
        universal_var = blocks[block_index][1].pop()
        inner_vars: List[int] = []
        for _, variables in blocks[block_index + 1:]:
            inner_vars.extend(variables)

        negative_half: List[Clause] = []  # u = 0
        positive_half: List[Clause] = []  # u = 1
        for clause in clauses:
            if -universal_var in clause:
                positive_half.append(tuple(l for l in clause if l != -universal_var))
            elif universal_var in clause:
                negative_half.append(tuple(l for l in clause if l != universal_var))
            else:
                negative_half.append(clause)
                positive_half.append(clause)

        # Fresh copies of inner variables for the u = 1 half.
        rename: Dict[int, int] = {}
        for var in inner_vars:
            next_var += 1
            rename[var] = next_var
        renamed_half = [
            tuple((1 if lit > 0 else -1) * rename.get(abs(lit), abs(lit))
                  for lit in clause)
            for clause in positive_half
        ]
        clauses = negative_half + renamed_half
        if max_clauses is not None and len(clauses) > max_clauses:
            raise ExpansionBudgetExceeded(
                f"expansion produced {len(clauses)} clauses (budget {max_clauses})"
            )
        # The copies live in the same (now merged) existential scope.
        for index in range(block_index + 1, len(blocks)):
            quantifier, variables = blocks[index]
            blocks[index] = (quantifier, variables + [rename[v] for v in variables
                                                      if v in rename])

    cnf = Cnf(next_var)
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf, list(formula.outer_existential_block())


def solve_qbf_by_expansion(formula: QuantifiedCnf,
                           time_limit: Optional[float] = None,
                           max_clauses: Optional[int] = None,
                           tick: Optional[Callable[[], None]] = None
                           ) -> QbfResult:
    """Decide a QBF by full universal expansion plus one CDCL call."""
    start = time.perf_counter()
    universals = sum(len(variables) for quantifier, variables in formula.prefix
                     if quantifier == FORALL)
    try:
        cnf, outer = expand_to_cnf(formula, max_clauses=max_clauses, tick=tick)
    except ExpansionBudgetExceeded:
        return QbfResult(status="unknown", expanded_universals=universals,
                         runtime=time.perf_counter() - start)
    sat = solve_cnf(cnf, time_limit=time_limit, tick=tick)
    result = QbfResult(status=sat.status,
                       decisions=sat.decisions,
                       propagations=sat.propagations,
                       conflicts=sat.conflicts,
                       expanded_universals=universals,
                       expanded_clauses=len(cnf.clauses),
                       runtime=time.perf_counter() - start)
    if sat.is_sat:
        assert sat.model is not None
        result.model = {v: sat.model[v] for v in outer}
    return result
