"""QBF substrate: prenex QCNF, QDPLL and expansion solvers, oracle."""

from repro.qbf.bruteforce import brute_force_qbf
from repro.qbf.expansion import (
    ExpansionBudgetExceeded,
    expand_to_cnf,
    solve_qbf_by_expansion,
)
from repro.qbf.qcnf import EXISTS, FORALL, QuantifiedCnf
from repro.qbf.qdpll import QbfResult, QdpllSolver, solve_qbf

__all__ = [
    "EXISTS",
    "ExpansionBudgetExceeded",
    "FORALL",
    "QbfResult",
    "QdpllSolver",
    "QuantifiedCnf",
    "brute_force_qbf",
    "expand_to_cnf",
    "solve_qbf",
    "solve_qbf_by_expansion",
]
