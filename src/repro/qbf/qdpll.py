"""A search-based QBF solver (QDPLL).

The role skizzo [2] plays in the paper: a complete decision procedure for
prenex QCNF.  The solver extends DPLL to quantified formulas:

* **prefix-order branching** — decisions follow the quantifier prefix;
  existential variables are OR-branched, universal variables AND-branched
  (irrelevant variables — those absent from every unsatisfied clause —
  are assigned a single arbitrary value instead);
* **universal reduction** (preprocessing) — a universal literal is
  deleted from a clause when no existential literal in the clause is
  quantified deeper;
* **QBF unit propagation** — a clause with no satisfied literal, exactly
  one unassigned existential literal and no unassigned universal literal
  quantified outside it forces that literal; a clause whose unassigned
  literals are all universal is falsified;
* **pure-literal rule** (preprocessing) — pure existential literals are
  satisfied, pure universal literals falsified.

The implementation keeps all state in-place (assignment array, clause
counters, an undo trail) — no clause-list copying per node.  No
clause/cube learning is implemented; the paper's experiments already
show the QBF-solver route losing to the BDD route by orders of
magnitude, and this solver reproduces that relative behaviour (ablation
A2 compares it against expansion-based solving).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.qbf.qcnf import QuantifiedCnf

__all__ = ["QbfResult", "QdpllSolver", "solve_qbf"]

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


@dataclass
class QbfResult:
    """Outcome of a QBF call.

    ``conflicts`` and the ``expanded_*`` figures are filled by the
    expansion-based solver (which delegates to CDCL); the QDPLL search
    reports branching via ``decisions``/``propagations``.
    """

    status: str  # "sat", "unsat" or "unknown"
    model: Optional[Dict[int, bool]] = None  # outer existential block only
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    expanded_universals: int = 0
    expanded_clauses: int = 0
    runtime: float = 0.0

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"


class _Timeout(Exception):
    pass


class QdpllSolver:
    """One-shot QDPLL search over a :class:`QuantifiedCnf`."""

    def __init__(self, formula: QuantifiedCnf):
        self.formula = formula
        self.order = formula.variables_in_order()
        nv = formula.cnf.num_vars
        self.level = [0] * (nv + 1)
        self.existential = [True] * (nv + 1)
        for var in self.order:
            self.level[var] = formula.level(var)
            self.existential[var] = formula.is_existential(var)
        self.outer_block = formula.outer_existential_block()
        self.result = QbfResult(status="unknown")
        self._deadline: Optional[float] = None
        self._tick: Optional[Callable[[], None]] = None
        self._contradiction = False

        # Clause store with counters, built by preprocessing.
        self.clauses: List[Tuple[int, ...]] = []
        self.occur_pos: Dict[int, List[int]] = {}
        self.occur_neg: Dict[int, List[int]] = {}
        self._preprocess()

        nc = len(self.clauses)
        self.n_sat = [0] * nc          # satisfied literals per clause
        self.n_unassigned = [0] * nc   # unassigned literals per clause
        self.n_unassigned_e = [0] * nc  # ... of which existential
        for ci, clause in enumerate(self.clauses):
            self.n_unassigned[ci] = len(clause)
            self.n_unassigned_e[ci] = sum(
                1 for lit in clause if self.existential[abs(lit)])
        self.unsatisfied = nc          # clauses with n_sat == 0
        self.value = [_UNASSIGNED] * (nv + 1)
        self.trail: List[int] = []
        # Work list of clauses whose counters changed and may now be unit
        # or falsified; checks are state-based, so stale entries are safe.
        self._dirty: List[int] = list(range(nc))
        self._witness: Dict[int, bool] = {}

    # -- preprocessing ------------------------------------------------------------

    def _universal_reduce(self, clause: Tuple[int, ...]) -> Tuple[int, ...]:
        max_exist = -1
        for lit in clause:
            if self.existential[abs(lit)]:
                max_exist = max(max_exist, self.level[abs(lit)])
        return tuple(lit for lit in clause
                     if self.existential[abs(lit)]
                     or self.level[abs(lit)] < max_exist)

    def _preprocess(self) -> None:
        """Drop tautologies, apply universal reduction, register clauses."""
        seen = set()
        for raw in self.formula.cnf.clauses:
            clause = tuple(dict.fromkeys(raw))  # dedupe, keep order
            if any(-lit in clause for lit in clause):
                continue  # tautology (must go before reduction)
            clause = self._universal_reduce(clause)
            if not clause:
                self._contradiction = True
                return
            if clause in seen:
                continue
            seen.add(clause)
            ci = len(self.clauses)
            self.clauses.append(clause)
            for lit in clause:
                bucket = self.occur_pos if lit > 0 else self.occur_neg
                bucket.setdefault(abs(lit), []).append(ci)

    # -- assignment machinery ---------------------------------------------------------

    def _assign(self, lit: int) -> bool:
        """Make ``lit`` true; returns False on an immediate conflict."""
        var = abs(lit)
        self.value[var] = _TRUE if lit > 0 else _FALSE
        self.trail.append(lit)
        satisfied = self.occur_pos if lit > 0 else self.occur_neg
        falsified = self.occur_neg if lit > 0 else self.occur_pos
        existential = self.existential[var]
        conflict = False
        for ci in satisfied.get(var, ()):
            if self.n_sat[ci] == 0:
                self.unsatisfied -= 1
            self.n_sat[ci] += 1
            self.n_unassigned[ci] -= 1
            if existential:
                self.n_unassigned_e[ci] -= 1
        for ci in falsified.get(var, ()):
            self.n_unassigned[ci] -= 1
            if existential:
                self.n_unassigned_e[ci] -= 1
            if self.n_sat[ci] == 0:
                self._dirty.append(ci)
                if self.n_unassigned_e[ci] == 0:
                    conflict = True
        return not conflict

    def _unassign_to(self, mark: int) -> None:
        while len(self.trail) > mark:
            lit = self.trail.pop()
            var = abs(lit)
            self.value[var] = _UNASSIGNED
            satisfied = self.occur_pos if lit > 0 else self.occur_neg
            falsified = self.occur_neg if lit > 0 else self.occur_pos
            existential = self.existential[var]
            for ci in satisfied.get(var, ()):
                self.n_sat[ci] -= 1
                if self.n_sat[ci] == 0:
                    self.unsatisfied += 1
                self.n_unassigned[ci] += 1
                if existential:
                    self.n_unassigned_e[ci] += 1
            for ci in falsified.get(var, ()):
                self.n_unassigned[ci] += 1
                if existential:
                    self.n_unassigned_e[ci] += 1

    # -- propagation ---------------------------------------------------------------------

    def _examine(self, ci: int) -> Optional[int]:
        """Unit literal of a clause, 0 for conflict, None for nothing."""
        if self.n_sat[ci] > 0:
            return None
        if self.n_unassigned_e[ci] == 0:
            return 0  # all remaining literals universal: falsified
        if self.n_unassigned_e[ci] != 1:
            return None
        clause = self.clauses[ci]
        unit = None
        unit_level = -1
        for lit in clause:
            var = abs(lit)
            if self.value[var] == _UNASSIGNED and self.existential[var]:
                unit = lit
                unit_level = self.level[var]
        assert unit is not None
        for lit in clause:
            var = abs(lit)
            if (self.value[var] == _UNASSIGNED
                    and not self.existential[var]
                    and self.level[var] < unit_level):
                return None  # an outer universal moves first: not unit
        return unit

    def _propagate(self) -> bool:
        """Drain the dirty work list with the unit rule; False on conflict."""
        while self._dirty:
            ci = self._dirty.pop()
            verdict = self._examine(ci)
            if verdict is None:
                continue
            if verdict == 0:
                return False
            if self.value[abs(verdict)] != _UNASSIGNED:
                continue  # assigned meanwhile by another unit
            self.result.propagations += 1
            if not self._assign(verdict):
                return False
        return True

    # -- branching --------------------------------------------------------------------------

    def _is_relevant(self, var: int) -> bool:
        """Does the variable occur in any currently unsatisfied clause?"""
        for bucket in (self.occur_pos, self.occur_neg):
            for ci in bucket.get(var, ()):
                if self.n_sat[ci] == 0:
                    return True
        return False

    def _pick_branch_var(self) -> Optional[int]:
        for var in self.order:
            if self.value[var] == _UNASSIGNED and self._is_relevant(var):
                return var
        return None

    # -- search ------------------------------------------------------------------------------

    def solve(self, time_limit: Optional[float] = None,
              tick: Optional[Callable[[], None]] = None) -> QbfResult:
        """Run the search.  ``tick`` is invoked at every search-node entry
        and may raise to abort cooperatively (parallel cancellation)."""
        start = time.perf_counter()
        self._tick = tick
        if time_limit is not None:
            self._deadline = start + time_limit
        if self._contradiction:
            self.result.status = "unsat"
            self.result.runtime = time.perf_counter() - start
            return self.result
        try:
            success = self._search()
        except _Timeout:
            self.result.status = "unknown"
            self.result.runtime = time.perf_counter() - start
            return self.result
        if success:
            self.result.status = "sat"
            self.result.model = self._witness
        else:
            self.result.status = "unsat"
        self.result.runtime = time.perf_counter() - start
        return self.result

    def _search(self) -> bool:
        if self._tick is not None:
            self._tick()
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise _Timeout
        mark = len(self.trail)
        if not self._propagate():
            self._unassign_to(mark)
            return False
        if self.unsatisfied == 0:
            self._witness = {
                v: self.value[v] == _TRUE if self.value[v] != _UNASSIGNED
                else False
                for v in self.outer_block
            }
            self._unassign_to(mark)
            return True
        var = self._pick_branch_var()
        if var is None:
            # Every unassigned variable is irrelevant yet clauses remain
            # unsatisfied — impossible, since an unsatisfied clause has
            # unassigned literals (else it would have conflicted).
            raise AssertionError("unsatisfied clause without branchable variable")
        self.result.decisions += 1
        if self.existential[var]:
            for value in (True, False):
                inner = len(self.trail)
                if self._assign(var if value else -var) and self._search():
                    self._unassign_to(mark)
                    return True
                self._unassign_to(inner)
            self._unassign_to(mark)
            return False
        witness = None
        for value in (True, False):
            inner = len(self.trail)
            ok = self._assign(var if value else -var) and self._search()
            self._unassign_to(inner)
            if not ok:
                self._unassign_to(mark)
                return False
        self._unassign_to(mark)
        return True


def solve_qbf(formula: QuantifiedCnf,
              time_limit: Optional[float] = None) -> QbfResult:
    """Convenience wrapper: solve with a fresh QDPLL instance."""
    return QdpllSolver(formula).solve(time_limit=time_limit)
