"""repro.fleet — multi-host suite sharding over a shared directory.

The paper's sweep tables are embarrassingly parallel across
specifications, and the per-spec search space grows super-exponentially
in ``n`` — so past one machine's cores, the next scaling lever is more
machines.  This package turns the single-host suite scheduler
(:mod:`repro.parallel`) into a fleet with no new dependencies and no
coordinator: the only shared infrastructure is a directory.

* :class:`~repro.fleet.queue.FleetQueue` — the protocol: task files,
  attempt-scoped ``os.link`` leases with heartbeat mtimes, tombstone
  reclaims, first-writer-wins results.  Every race is adjudicated by
  the filesystem.
* :func:`~repro.fleet.worker.work_queue` — one worker host's drain
  loop: claim a batch, run it through the crash-isolated scheduler
  pool against a per-host store, heartbeat, commit.
* :func:`~repro.fleet.worker.collect_results` — fold result files back
  into one trace, in submission order.
* :func:`repro.store.merge_stores` — fold the per-host stores into one,
  asserting canonical-record identity on every duplicate key.

``python -m repro fleet submit|work|collect|merge|status`` is the CLI;
``docs/fleet.md`` documents the protocol and its guarantees.
"""

from repro.fleet.queue import (
    FLEET_RESULT_FORMAT,
    FLEET_TASK_FORMAT,
    FleetQueue,
    Lease,
    LeaseLost,
    default_host,
)
from repro.fleet.worker import collect_results, work_queue

__all__ = [
    "FLEET_RESULT_FORMAT",
    "FLEET_TASK_FORMAT",
    "FleetQueue",
    "Lease",
    "LeaseLost",
    "collect_results",
    "default_host",
    "work_queue",
]
