"""Fleet worker and collector: the host-side halves of the protocol.

A worker host is a loop around two existing layers: claim a batch of
open tasks from the :class:`~repro.fleet.queue.FleetQueue`, run them
through the crash-isolated suite scheduler
(:func:`repro.parallel.run_suite`) against the host's own store under
the queue, heartbeat the held leases from a background thread while
the batch runs, and commit one first-writer-wins result file per task.
Everything distributed-systems-shaped (claim races, reclaim tombstones,
duplicate completions) lives in the queue; everything
synthesis-shaped (engine selection, crash retry *within* the host,
store lookups) lives in the scheduler.  The worker only wires them
together.

The collector is the inverse: read every result file back in task-id
order — the submission order — and append the banked run records to a
trace file, stamped with ``fleet_host``/``fleet_attempt`` provenance
(volatile fields, so the trace stays canonically comparable with a
serial ``repro suite`` run of the same tasks).
"""

from __future__ import annotations

import os
import shutil
import signal
import threading
import time
from typing import Dict, List, Optional

import repro.obs as obs
from repro.fleet.queue import FleetQueue, Lease, LeaseLost, default_host
from repro.obs.runrecord import append_record
from repro.parallel.scheduler import run_suite
from repro.parallel.tasks import SynthesisTask, default_workers

__all__ = ["collect_results", "work_queue"]


def _maybe_kill_self(queue: FleetQueue, lease: Lease) -> None:
    """Fault injection (tests/CI): SIGKILL this worker once per queue.

    The tombstone file is created *before* the kill so the retry —
    necessarily on another worker, this one is gone — runs the task
    normally, mirroring ``SynthesisTask.crash_once_file`` one level up.
    """
    meta = queue.load_task(lease.task_id)
    kill_file = meta.get("kill_once_file")
    if not kill_file or os.path.exists(kill_file):
        return
    with open(kill_file, "w"):
        pass
    os.kill(os.getpid(), signal.SIGKILL)


def _heartbeat_loop(queue: FleetQueue, leases: List[Lease],
                    stop: threading.Event, interval: float) -> None:
    while not stop.wait(interval):
        for lease in leases:
            if lease.lost:
                continue
            try:
                queue.heartbeat(lease)
            except LeaseLost:
                pass  # flagged on the lease; the commit race decides


def work_queue(queue_root: str,
               host: Optional[str] = None,
               workers: Optional[int] = None,
               lease_timeout: float = 60.0,
               poll: float = 0.5,
               max_tasks: Optional[int] = None,
               store_root: Optional[str] = None,
               on_report=None) -> Dict[str, object]:
    """Drain a fleet queue from this host; returns a work summary.

    Runs until the queue has no open tasks (or ``max_tasks`` results
    were committed by this worker).  Open tasks held by other live
    workers are waited out with ``poll``-second naps — their leases
    either complete or expire and get reclaimed here.
    """
    host = host or default_host()
    queue = FleetQueue(queue_root, lease_timeout=lease_timeout)
    store_root = store_root or queue.host_store_root(host)
    os.makedirs(store_root, exist_ok=True)
    pool_size = workers if workers is not None else default_workers()
    started = time.perf_counter()
    summary: Dict[str, object] = {
        "host": host, "store": store_root, "completed": 0, "errors": 0,
        "claims": 0, "commit_races": 0, "lease_lost": 0,
    }

    while True:
        open_ids = queue.open_tasks()
        if not open_ids:
            break
        leases: List[Lease] = []
        for task_id in open_ids:
            if len(leases) >= pool_size:
                break
            lease = queue.try_claim(task_id, host)
            if lease is not None:
                leases.append(lease)
        if not leases:
            # Everything open is leased to live workers (or just
            # closed); nap and re-scan rather than spin.
            time.sleep(poll)
            continue
        summary["claims"] += len(leases)

        for lease in leases:
            _maybe_kill_self(queue, lease)
            os.makedirs(lease.partial_dir, exist_ok=True)

        tasks = [
            SynthesisTask.from_wire(queue.load_task(lease.task_id)["task"])
            for lease in leases
        ]
        tasks = [task if task.label is not None
                 else _with_label(task, lease.task_id)
                 for task, lease in zip(tasks, leases)]

        stop = threading.Event()
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(queue, leases, stop, max(0.5, lease_timeout / 4)),
            daemon=True)
        beat.start()
        try:
            suite = run_suite(tasks, workers=len(leases), store=store_root,
                              on_report=on_report)
        finally:
            stop.set()
            beat.join()

        for lease, report in zip(leases, suite.reports):
            # The full (schema-valid) record goes in the result file;
            # identity checks canonicalize at comparison time.
            committed = queue.commit_result(
                lease, status=report.status, record=report.record,
                error=report.error, runtime=report.runtime)
            if not committed:
                summary["commit_races"] += 1
            elif report.ok:
                summary["completed"] += 1
            else:
                summary["errors"] += 1
            if lease.lost:
                summary["lease_lost"] += 1
            shutil.rmtree(lease.partial_dir, ignore_errors=True)

        if max_tasks is not None and (summary["completed"]
                                      + summary["errors"]) >= max_tasks:
            break

    summary["runtime"] = time.perf_counter() - started
    return summary


def _with_label(task: SynthesisTask, label: str) -> SynthesisTask:
    from dataclasses import replace
    return replace(task, label=label)


def collect_results(queue_root: str,
                    trace: Optional[str] = None) -> Dict[str, object]:
    """Gather every task's outcome in submission order.

    Returns ``{"results": [...], "missing": [...], "failed": [...]}``.
    With ``trace``, appends each result's run record (plus
    ``fleet_host``/``fleet_attempt`` provenance) as one JSONL line —
    task order, so the file is canonically comparable with a serial
    suite trace of the same submissions.
    """
    queue = FleetQueue(queue_root)
    results: List[Dict] = []
    missing: List[str] = []
    failed: List[str] = []
    for task_id in queue.task_ids():
        result = queue.result(task_id)
        if result is not None:
            results.append(result)
            continue
        if queue.failure(task_id) is not None:
            failed.append(task_id)
        else:
            missing.append(task_id)
    if trace is not None:
        for result in results:
            record = result.get("record")
            if record is None:
                continue
            stamped = dict(record)
            stamped["fleet_host"] = result.get("host", "?")
            stamped["fleet_attempt"] = result.get("attempt", 1)
            append_record(trace, stamped)
    obs.publish({"fleet.collected": len(results)})
    return {"results": results, "missing": missing, "failed": failed}
