"""The fleet work queue: a directory, links, and nothing else.

A queue is one shared directory (NFS, a bind mount, anything with
POSIX ``link`` semantics) that many hosts operate on concurrently with
no coordinator process.  Every mutation is either an atomic
first-writer-wins file creation (``os.link`` from a fsynced temp file
— the exact commit idiom of :meth:`repro.store.SynthesisStore.put`) or
an append-only JSONL line, so there is no state a crash at any instant
can corrupt::

    <root>/
      tasks/<id>.json          submitted task (repro-fleet-task-v1);
                               immutable after submit
      leases/<id>.a<N>.json    claim of attempt N — created via link,
                               so exactly one host holds attempt N;
                               heartbeats bump the file's mtime
      retired/<id>.a<N>.json   tombstone: attempt N's holder was
                               declared dead and the lease reclaimed —
                               created via link, so exactly one host
                               performs each reclaim
      results/<id>.json        terminal outcome (repro-fleet-result-v1),
                               first-writer-wins
      failed/<id>.json         attempts exhausted, first-writer-wins
      partial/<id>.a<N>.<host>/  in-progress scratch, quarantined (not
                               merged) when the attempt is reclaimed
      quarantine/              where reclaimed partials go
      retries.jsonl            advisory append-only reclaim log
      hosts/<host>/store/      per-host synthesis stores, folded by
                               ``repro fleet merge``

The **attempt number is derived, never stored mutably**: attempt ``N``
is open iff tombstones ``.a1 .. .a<N-1>`` all exist and ``.a<N>`` does
not.  Claiming is therefore a single ``os.link`` race on the attempt-
scoped lease name; reclaiming is a single ``os.link`` race on the
tombstone name.  Two hosts can never both think they own an attempt,
and two hosts can never both reclaim one — the filesystem adjudicates.

A lease holder can *lose* its lease: if it stalls past the queue's
``lease_timeout`` another host tombstones the attempt and re-runs the
task.  :meth:`FleetQueue.heartbeat` detects this (the tombstone exists)
and raises :class:`LeaseLost` so the stalled worker stops wasting
cycles; if it raced to completion anyway, its result commit simply
participates in the first-writer-wins race with the retry's.
"""

from __future__ import annotations

import json
import os
import secrets
import socket
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.obs.runrecord import append_jsonl_line, read_jsonl
from repro.parallel.tasks import SynthesisTask

__all__ = ["FLEET_RESULT_FORMAT", "FLEET_TASK_FORMAT", "FleetQueue",
           "Lease", "LeaseLost", "default_host"]

FLEET_TASK_FORMAT = "repro-fleet-task-v1"
FLEET_RESULT_FORMAT = "repro-fleet-result-v1"

#: Default bound on attempts per task: one run plus one retry after a
#: reclaim — mirroring the suite scheduler's retry-once policy.
DEFAULT_MAX_ATTEMPTS = 2


def default_host() -> str:
    """A queue-unique worker identity: hostname plus pid."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _commit_json(path: str, payload: Dict) -> bool:
    """First-writer-wins JSON file commit (temp + fsync + link)."""
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    fd, tmp_path = tempfile.mkstemp(prefix=".commit-", dir=directory)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    try:
        os.link(tmp_path, path)
    except FileExistsError:
        return False
    finally:
        os.unlink(tmp_path)
    return True


def _read_json(path: str) -> Optional[Dict]:
    try:
        with open(path, "rb") as handle:
            payload = json.loads(handle.read())
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return None
    return payload if isinstance(payload, dict) else None


class LeaseLost(RuntimeError):
    """This worker's lease was reclaimed by another host."""


@dataclass
class Lease:
    """One host's hold on one attempt of one task."""

    task_id: str
    attempt: int
    host: str
    token: str
    path: str
    retired_path: str
    partial_dir: str
    retried_hosts: List[str] = field(default_factory=list)
    lost: bool = False


class FleetQueue:
    """One handle onto a shared queue directory (many per queue)."""

    def __init__(self, root: str,
                 lease_timeout: float = 60.0):
        self.root = os.path.abspath(root)
        self.tasks_dir = os.path.join(self.root, "tasks")
        self.leases_dir = os.path.join(self.root, "leases")
        self.retired_dir = os.path.join(self.root, "retired")
        self.results_dir = os.path.join(self.root, "results")
        self.failed_dir = os.path.join(self.root, "failed")
        self.partial_dir = os.path.join(self.root, "partial")
        self.quarantine_dir = os.path.join(self.root, "quarantine")
        self.retries_path = os.path.join(self.root, "retries.jsonl")
        self.lease_timeout = lease_timeout
        for directory in (self.tasks_dir, self.leases_dir, self.retired_dir,
                          self.results_dir, self.failed_dir, self.partial_dir,
                          self.quarantine_dir):
            os.makedirs(directory, exist_ok=True)

    # -- paths ----------------------------------------------------------------

    def host_store_root(self, host: str) -> str:
        return os.path.join(self.root, "hosts", host, "store")

    def host_store_roots(self) -> List[str]:
        """Every per-host store directory currently in the queue."""
        hosts_dir = os.path.join(self.root, "hosts")
        if not os.path.isdir(hosts_dir):
            return []
        return [os.path.join(hosts_dir, name, "store")
                for name in sorted(os.listdir(hosts_dir))
                if os.path.isdir(os.path.join(hosts_dir, name, "store"))]

    def _task_path(self, task_id: str) -> str:
        return os.path.join(self.tasks_dir, f"{task_id}.json")

    def _lease_path(self, task_id: str, attempt: int) -> str:
        return os.path.join(self.leases_dir, f"{task_id}.a{attempt}.json")

    def _retired_path(self, task_id: str, attempt: int) -> str:
        return os.path.join(self.retired_dir, f"{task_id}.a{attempt}.json")

    def _result_path(self, task_id: str) -> str:
        return os.path.join(self.results_dir, f"{task_id}.json")

    def _failed_path(self, task_id: str) -> str:
        return os.path.join(self.failed_dir, f"{task_id}.json")

    # -- submit ---------------------------------------------------------------

    def submit(self, task: SynthesisTask, task_id: Optional[str] = None,
               max_attempts: int = DEFAULT_MAX_ATTEMPTS,
               kill_once_file: Optional[str] = None) -> str:
        """Add one task to the queue; returns its id.

        Ids default to ``<seq>-<label>`` with a zero-padded sequence
        number, so task order (and every collected trace) follows
        submission order.  ``kill_once_file`` is the fleet-level fault
        injection hook (tests/CI only): the claiming *worker process*
        SIGKILLs itself once, exercising the reclaim path end to end.
        """
        if task_id is None:
            seq = len(self.task_ids())
            slug = task.resolved_label().replace("/", "-")
            task_id = f"{seq:04d}-{slug}"
        payload: Dict[str, object] = {
            "format": FLEET_TASK_FORMAT,
            "id": task_id,
            "task": task.to_wire(),
            "max_attempts": max(1, int(max_attempts)),
            "unix_time": time.time(),
        }
        if kill_once_file is not None:
            payload["kill_once_file"] = kill_once_file
        if not _commit_json(self._task_path(task_id), payload):
            raise FileExistsError(f"task id already queued: {task_id}")
        return task_id

    # -- inspection -----------------------------------------------------------

    def task_ids(self) -> List[str]:
        return sorted(name[:-5] for name in os.listdir(self.tasks_dir)
                      if name.endswith(".json") and not name.startswith("."))

    def load_task(self, task_id: str) -> Dict:
        payload = _read_json(self._task_path(task_id))
        if payload is None or payload.get("format") != FLEET_TASK_FORMAT:
            raise FileNotFoundError(f"no such fleet task: {task_id}")
        return payload

    def result(self, task_id: str) -> Optional[Dict]:
        return _read_json(self._result_path(task_id))

    def failure(self, task_id: str) -> Optional[Dict]:
        return _read_json(self._failed_path(task_id))

    def open_tasks(self) -> List[str]:
        """Ids with neither a result nor a failure marker, in order."""
        done = {name[:-5] for name in os.listdir(self.results_dir)
                if name.endswith(".json")}
        done |= {name[:-5] for name in os.listdir(self.failed_dir)
                 if name.endswith(".json")}
        return [task_id for task_id in self.task_ids() if task_id not in done]

    def attempt_number(self, task_id: str) -> int:
        """The currently open attempt (1 + count of tombstones)."""
        attempt = 1
        while os.path.exists(self._retired_path(task_id, attempt)):
            attempt += 1
        return attempt

    def retried_hosts(self, task_id: str) -> List[str]:
        """Dead hosts whose attempts at this task were reclaimed."""
        hosts = []
        attempt = 1
        while True:
            tombstone = _read_json(self._retired_path(task_id, attempt))
            if tombstone is None:
                return hosts
            hosts.append(tombstone.get("dead_host", "?"))
            attempt += 1

    # -- claim / heartbeat / reclaim ------------------------------------------

    def try_claim(self, task_id: str, host: str) -> Optional[Lease]:
        """Try to own the task's open attempt; None if unavailable.

        Walks the claim state machine at most a few steps: an expired
        lease on the open attempt is reclaimed first (tombstone race),
        then the next attempt is claimed — or the task is marked failed
        once its attempt budget is exhausted.
        """
        meta = self.load_task(task_id)
        max_attempts = int(meta.get("max_attempts", DEFAULT_MAX_ATTEMPTS))
        while True:
            if os.path.exists(self._result_path(task_id)):
                return None
            attempt = self.attempt_number(task_id)
            if attempt > max_attempts:
                self._mark_failed(task_id, host, attempt - 1)
                return None
            lease_path = self._lease_path(task_id, attempt)
            token = secrets.token_hex(8)
            claimed = _commit_json(lease_path, {
                "task": task_id, "attempt": attempt, "host": host,
                "pid": os.getpid(), "token": token,
                "claimed_at": time.time(),
                "retried_hosts": self.retried_hosts(task_id),
            })
            if claimed:
                lease = Lease(
                    task_id=task_id, attempt=attempt, host=host, token=token,
                    path=lease_path,
                    retired_path=self._retired_path(task_id, attempt),
                    partial_dir=os.path.join(
                        self.partial_dir, f"{task_id}.a{attempt}.{host}"),
                    retried_hosts=self.retried_hosts(task_id))
                obs.emit("fleet_task_claimed", task=task_id, host=host,
                         attempt=attempt)
                obs.publish({"fleet.claims": 1})
                return lease
            # Attempt already leased: live holder -> unavailable; dead
            # holder -> race to reclaim, then loop to claim attempt+1.
            if not self._reclaim_if_expired(task_id, attempt, host):
                return None

    def _reclaim_if_expired(self, task_id: str, attempt: int,
                            host: str) -> bool:
        """Tombstone a stale lease; True if the next attempt is open."""
        lease_path = self._lease_path(task_id, attempt)
        try:
            age = time.time() - os.stat(lease_path).st_mtime
        except OSError:
            # Lease vanished mid-claim commit or was already handled;
            # let the caller loop and re-observe.
            return os.path.exists(self._retired_path(task_id, attempt))
        if age <= self.lease_timeout:
            return False
        holder = _read_json(lease_path) or {}
        tombstone = {
            "task": task_id, "attempt": attempt,
            "dead_host": holder.get("host", "?"),
            "dead_pid": holder.get("pid"),
            "reclaimed_by": host,
            "lease_age": age,
            "unix_time": time.time(),
        }
        if not _commit_json(self._retired_path(task_id, attempt), tombstone):
            return True  # another host won the reclaim — attempt is open
        self._quarantine_partials(task_id, attempt)
        append_jsonl_line(self.retries_path, tombstone)
        obs.emit("fleet_lease_reclaimed", task=task_id,
                 dead_host=tombstone["dead_host"], host=host)
        obs.publish({"fleet.reclaims": 1})
        return True

    def _quarantine_partials(self, task_id: str, attempt: int) -> None:
        """Move a dead attempt's scratch out of merge's way."""
        prefix = f"{task_id}.a{attempt}."
        quarantined = 0
        for name in os.listdir(self.partial_dir):
            if not name.startswith(prefix):
                continue
            target = os.path.join(self.quarantine_dir,
                                  f"{int(time.time())}-{name}")
            try:
                os.replace(os.path.join(self.partial_dir, name), target)
                quarantined += 1
            except OSError:
                pass  # already moved by a concurrent reclaimer
        if quarantined:
            obs.publish({"fleet.quarantined": quarantined})

    def _mark_failed(self, task_id: str, host: str, attempts: int) -> None:
        if _commit_json(self._failed_path(task_id), {
                "format": FLEET_RESULT_FORMAT, "id": task_id,
                "status": "failed", "attempts": attempts,
                "retried_hosts": self.retried_hosts(task_id),
                "marked_by": host, "unix_time": time.time()}):
            obs.emit("fleet_task_failed", task=task_id, host=host)
            obs.publish({"fleet.failures": 1})

    def heartbeat(self, lease: Lease) -> None:
        """Refresh the lease's liveness; raises :class:`LeaseLost`."""
        if os.path.exists(lease.retired_path):
            lease.lost = True
            raise LeaseLost(
                f"lease on {lease.task_id} attempt {lease.attempt} was "
                f"reclaimed from {lease.host}")
        try:
            os.utime(lease.path)
        except OSError as exc:
            lease.lost = True
            raise LeaseLost(
                f"lease file for {lease.task_id} attempt {lease.attempt} "
                f"disappeared") from exc
        obs.publish({"fleet.heartbeats": 1})

    # -- results --------------------------------------------------------------

    def commit_result(self, lease: Lease, status: str,
                      record: Optional[Dict] = None,
                      error: Optional[str] = None,
                      runtime: float = 0.0) -> bool:
        """Publish the attempt's outcome; False for a lost FWW race."""
        committed = _commit_json(self._result_path(lease.task_id), {
            "format": FLEET_RESULT_FORMAT,
            "id": lease.task_id,
            "status": status,
            "host": lease.host,
            "attempt": lease.attempt,
            "retried_hosts": lease.retried_hosts,
            "record": record,
            "error": error,
            "runtime": runtime,
            "unix_time": time.time(),
        })
        if committed:
            obs.emit("fleet_task_done", task=lease.task_id, host=lease.host,
                     status=status)
            obs.publish({"fleet.completions": 1})
        return committed

    # -- status ---------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """One queue-wide snapshot (``repro fleet status``)."""
        task_ids = self.task_ids()
        open_ids = set(self.open_tasks())
        now = time.time()
        leased = 0
        expired = 0
        for task_id in open_ids:
            lease_path = self._lease_path(task_id,
                                          self.attempt_number(task_id))
            try:
                age = now - os.stat(lease_path).st_mtime
            except OSError:
                continue
            leased += 1
            if age > self.lease_timeout:
                expired += 1
        retries, _torn = (read_jsonl(self.retries_path)
                          if os.path.exists(self.retries_path) else ([], 0))
        failed = [name[:-5] for name in sorted(os.listdir(self.failed_dir))
                  if name.endswith(".json")]
        done = len([name for name in os.listdir(self.results_dir)
                    if name.endswith(".json")])
        return {
            "root": self.root,
            "tasks": len(task_ids),
            "done": done,
            "open": len(open_ids),
            "claimed": leased,
            "expired_leases": expired,
            "failed": failed,
            "reclaims": len(retries),
            "hosts": [os.path.basename(os.path.dirname(path))
                      for path in self.host_store_roots()],
        }
