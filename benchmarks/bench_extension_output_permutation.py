"""Extension bench — exact synthesis with output permutation.

The follow-up paper ("Reversible Logic Synthesis with Output
Permutation") lets the synthesizer choose which circuit line carries
which function output.  This bench measures, per benchmark, the fixed-
output minimal depth vs the output-permuted minimal depth and the
winning permutation count.  Expected shape: permuted depth <= fixed
depth everywhere, with strict improvements on functions whose structure
is a relabeling away from something simpler (swap-like benchmarks), at a
modest runtime overhead (n! cheap conjunctions per depth sharing n^2
agreement BDDs).

Run:  pytest benchmarks/bench_extension_output_permutation.py --benchmark-only -s
"""

import pytest

from _tables import engine_timeout, print_table, tier
from repro.functions import table1_entries
from repro.synth import synthesize
from repro.synth.output_permutation import synthesize_with_output_permutation

CASES = [e for e in table1_entries(tier()) if e.spec().n_lines <= 4]

_results = {}


def _run_fixed(entry):
    result = synthesize(entry.spec(), kinds=("mct",), engine="bdd",
                        time_limit=engine_timeout())
    _results[(entry.name, "fixed")] = result
    return result


def _run_permuted(entry):
    result = synthesize_with_output_permutation(
        entry.spec(), kinds=("mct",), time_limit=engine_timeout())
    _results[(entry.name, "permuted")] = result
    return result


@pytest.mark.parametrize("entry", CASES, ids=lambda e: e.name)
def test_fixed(benchmark, entry):
    result = benchmark.pedantic(_run_fixed, args=(entry,),
                                rounds=1, iterations=1)
    assert result.realized


@pytest.mark.parametrize("entry", CASES, ids=lambda e: e.name)
def test_permuted(benchmark, entry):
    result = benchmark.pedantic(_run_permuted, args=(entry,),
                                rounds=1, iterations=1)
    if result.realized:
        fixed = _results.get((entry.name, "fixed"))
        if fixed is not None and fixed.realized:
            assert result.depth <= fixed.depth


def teardown_module(module):
    header = (f"{'BENCH':12s} {'fixed D':>7s} {'perm D':>6s} {'#perms':>6s} "
              f"{'QCmin':>6s} {'fixed t':>8s} {'perm t':>8s}")
    rows = []
    for entry in CASES:
        fixed = _results.get((entry.name, "fixed"))
        permuted = _results.get((entry.name, "permuted"))
        if fixed is None or permuted is None or not permuted.realized:
            continue
        rows.append(f"{entry.name:12s} {fixed.depth:7d} {permuted.depth:6d} "
                    f"{len(permuted.realizations):6d} "
                    f"{permuted.quantum_cost_min:6d} "
                    f"{fixed.runtime:7.2f}s {permuted.runtime:7.2f}s")
    print_table("EXTENSION — synthesis with output permutation",
                header, rows,
                "Permuted depth is never larger; strict improvements mark "
                "functions that are a relabeling away from simpler ones.")
