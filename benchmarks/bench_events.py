"""Event-stream overhead — live progress must cost (almost) nothing.

Two claims pinned here, both on the flagship 3_17 benchmark:

* **identity** — a run with a subscriber attached produces a canonical
  run record byte-identical to a run without one: events observe the
  computation, they never steer it;
* **overhead** — with a counting subscriber attached, the best-of-REPS
  wall-clock stays within ``MAX_OVERHEAD`` (5%) of the events-off
  best.  Emission without subscribers is an early-out before the event
  dict is even built, so the events-off path is the engine's natural
  speed.

Exports ``BENCH_events.json`` (honoring ``REPRO_TRACE_DIR`` /
``REPRO_TRACE=0``) with a ``calibration_s`` key so ``repro bench
diff`` can compare snapshots across hosts, and appends a keyed summary
to ``benchmarks/history.jsonl``.

Run:  pytest benchmarks/bench_events.py -s
"""

import json
import os
import platform

import repro.obs as obs
from _tables import append_history, machine_calibration, print_table
from repro.functions import get_spec
from repro.synth import synthesize

BENCHMARK = "3_17"
ENGINE = "sat"
#: Events-on best-of-REPS wall-clock may exceed events-off by this much.
MAX_OVERHEAD = 0.05
#: Absolute slack so a sub-10ms jitter cannot fail a sub-second run.
ABS_SLACK_S = 0.01
REPS = int(os.environ.get("REPRO_EVENTS_REPS", "5"))

_payload = {}


def _json_path():
    if os.environ.get("REPRO_TRACE") == "0":
        return None
    directory = os.environ.get("REPRO_TRACE_DIR", ".")
    return os.path.join(directory, "BENCH_events.json")


def _best_run(subscribed):
    """(best runtime, canonical record, events per run) over REPS."""
    spec = get_spec(BENCHMARK)
    best = float("inf")
    canonical = None
    seen = 0
    for _ in range(REPS):
        obs.reset_event_bus()
        events = []
        if subscribed:
            obs.subscribe(lambda event: events.append(event["event"]))
        try:
            result = synthesize(spec, engine=ENGINE)
        finally:
            obs.reset_event_bus()
        record = json.dumps(
            obs.canonical_record(obs.build_run_record(result)),
            sort_keys=True)
        assert canonical is None or canonical == record, \
            "canonical record changed between repetitions"
        canonical = record
        seen = len(events)
        best = min(best, result.runtime)
    return best, canonical, seen


def test_events_are_free_and_invisible():
    off_best, off_canonical, _ = _best_run(subscribed=False)
    on_best, on_canonical, seen = _best_run(subscribed=True)

    # Identity: the observed run is the same run.
    assert on_canonical == off_canonical, \
        "subscribing to events changed the canonical run record"
    # The subscriber actually saw the deepening happen.
    assert seen > 0, "no events reached the subscriber"

    overhead = (on_best - off_best) / off_best if off_best else 0.0
    _payload["overhead"] = {
        "benchmark": BENCHMARK,
        "engine": ENGINE,
        "reps": REPS,
        "events_per_run": seen,
        "off_best_s": off_best,
        "on_best_s": on_best,
        "overhead_ratio": overhead,
        "max_overhead": MAX_OVERHEAD,
    }
    assert on_best <= max(off_best * (1.0 + MAX_OVERHEAD),
                          off_best + ABS_SLACK_S), \
        f"events-on best {on_best:.4f}s exceeds events-off best " \
        f"{off_best:.4f}s by more than {MAX_OVERHEAD:.0%}"


def _export():
    if not _payload:
        return
    _payload.update({
        "bench": "events",
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "calibration_s": machine_calibration(),
    })
    path = _json_path()
    if path:
        with open(path, "w") as handle:
            json.dump(_payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    append_history("events", _payload)
    overhead = _payload["overhead"]
    row = (f"{overhead['benchmark']}/{overhead['engine']:6s} "
           f"{overhead['off_best_s']:9.4f}s {overhead['on_best_s']:9.4f}s "
           f"{overhead['overhead_ratio']:+9.1%} "
           f"({overhead['events_per_run']} events/run)")
    header = (f"{'BENCH/ENGINE':13s} {'EV OFF':>10s} {'EV ON':>10s} "
              f"{'OVERHEAD':>9s}")
    print_table(f"EVENT STREAM — identical canonical records asserted, "
                f"then overhead (best of {REPS})",
                header, [row],
                "Off = no subscribers (emission is an early-out); "
                "on = counting subscriber attached for the whole run.")


def teardown_module(module):
    _export()


if __name__ == "__main__":
    test_events_are_free_and_invisible()
    _export()
