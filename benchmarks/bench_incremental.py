"""Incremental deepening vs per-depth scratch solving — identity-pinned.

The warm engine sessions (assumption-based CDCL with formula reuse
across depths, ``docs/performance.md`` § Incremental deepening) must be
a pure optimization: for every benchmark in the Table 1 smoke set and
both session-capable engines (``sat``, ``qbf``/expansion) the warm run
is asserted to produce *exactly* the scratch run's answer — status,
depth, per-depth decisions, and the canonical circuit, gate for gate —
before any speed or conflict number is reported.

On ``3_17`` the SAT engine's warm total conflict count is additionally
asserted to be strictly below the cold count: the retained learnt
clauses and VSIDS activity must actually pay, not just not hurt.  The
QBF expansion engine's conflict delta is reported without a strict
assertion — on some functions the warm solver's inherited activity
ordering explores more conflicts at the SAT depth (see the honest
numbers in ``docs/performance.md``).

Exports ``BENCH_incremental.json`` (honoring ``REPRO_TRACE_DIR`` /
``REPRO_TRACE=0``).

Run:  cd benchmarks && PYTHONPATH=../src python -m pytest bench_incremental.py -q -s
 or:  PYTHONPATH=src python benchmarks/bench_incremental.py
"""

import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _tables import append_history, machine_calibration, print_table
from repro.functions import get_spec
from repro.synth import synthesize

#: Table 1 smoke set: fast enough for CI, slow enough to measure.
SMOKE_SET = ("3_17", "mod5d1_s", "mod5d2_s", "mod5mils",
             "decod24-v0", "decod24-v3")

#: Engines with a warm-session implementation to compare.
ENGINES = ("sat", "qbf")

#: Conflict metric aggregated per engine (the QBF engine's inner SAT
#: conflicts are reported under its own prefix).
CONFLICT_METRIC = {"sat": "sat.conflicts", "qbf": "qbf.conflicts"}

TIME_LIMIT = 120.0

_payload = {}


def _json_path():
    if os.environ.get("REPRO_TRACE") == "0":
        return None
    directory = os.environ.get("REPRO_TRACE_DIR", ".")
    return os.path.join(directory, "BENCH_incremental.json")


def _run(name, engine, incremental):
    spec = get_spec(name)
    start = time.perf_counter()
    result = synthesize(spec, kinds=("mct",), engine=engine,
                        incremental=incremental, time_limit=TIME_LIMIT)
    wall = time.perf_counter() - start
    assert result.incremental is incremental, \
        f"{name}/{engine}: asked incremental={incremental}, " \
        f"ran {result.incremental}"
    return result, wall


def _assert_identical(name, engine, warm, cold):
    """The warm session must compute the scratch answer, exactly."""
    assert warm.status == cold.status, \
        f"{name}/{engine}: warm {warm.status} != cold {cold.status}"
    assert warm.depth == cold.depth, \
        f"{name}/{engine}: warm depth {warm.depth} != cold {cold.depth}"
    assert [s.decision for s in warm.per_depth] \
        == [s.decision for s in cold.per_depth], \
        f"{name}/{engine}: per-depth trajectories diverge"
    assert [c.to_string() for c in warm.circuits] \
        == [c.to_string() for c in cold.circuits], \
        f"{name}/{engine}: canonical circuits diverge"


def _compare(engine, names):
    cases = {}
    for name in names:
        warm, warm_s = _run(name, engine, True)
        cold, cold_s = _run(name, engine, False)
        _assert_identical(name, engine, warm, cold)
        metric = CONFLICT_METRIC[engine]
        cases[name] = {
            "status": warm.status,
            "depth": warm.depth,
            "warm_s": warm_s,
            "cold_s": cold_s,
            "speedup": cold_s / warm_s if warm_s else float("inf"),
            "warm_conflicts": int(warm.metrics.get(metric, 0)),
            "cold_conflicts": int(cold.metrics.get(metric, 0)),
            "clauses_reused_total": int(
                warm.metrics.get("sat.incremental.clauses_reused", 0)),
        }
    return cases


def test_sat_identity_and_reuse():
    """Warm == cold on the whole smoke set; warm must win on 3_17."""
    cases = _compare("sat", SMOKE_SET)
    flagship = cases["3_17"]
    assert flagship["warm_conflicts"] < flagship["cold_conflicts"], \
        f"3_17: warm conflicts {flagship['warm_conflicts']} not below " \
        f"cold {flagship['cold_conflicts']} — clause reuse did not pay"
    assert all(c["clauses_reused_total"] > 0 for c in cases.values())
    _payload["sat"] = {"benchmarks": list(SMOKE_SET), "cases": cases}


def test_qbf_identity():
    """Warm row-cofactor expansion == scratch expansion, answer for answer."""
    cases = _compare("qbf", SMOKE_SET)
    assert all(c["clauses_reused_total"] > 0 for c in cases.values())
    _payload["qbf"] = {"benchmarks": list(SMOKE_SET), "cases": cases}


def _export():
    if not _payload:
        return
    _payload.update({
        "bench": "incremental",
        "time_limit_s": TIME_LIMIT,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "calibration_s": machine_calibration(),
    })
    path = _json_path()
    if path:
        with open(path, "w") as handle:
            json.dump(_payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    append_history("incremental", _payload)
    rows = []
    for engine in ENGINES:
        section = _payload.get(engine)
        if not section:
            continue
        for name, case in section["cases"].items():
            rows.append(
                f"{engine:4s} {name:12s} {case['cold_s']:8.2f}s "
                f"{case['warm_s']:8.2f}s {case['speedup']:7.2f}x "
                f"{case['cold_conflicts']:>9d} {case['warm_conflicts']:>9d}")
    header = (f"{'ENG':4s} {'BENCH':12s} {'COLD':>9s} {'WARM':>9s} "
              f"{'SPEEDUP':>8s} {'CONFL(C)':>9s} {'CONFL(W)':>9s}")
    print_table("INCREMENTAL — identical answers asserted, then speed",
                header, rows,
                "Warm = one assumption-guarded solver across all depths; "
                "cold = fresh solver per depth.  Same circuits, bit for bit.")


def teardown_module(module):
    _export()


if __name__ == "__main__":
    test_sat_identity_and_reuse()
    test_qbf_identity()
    _export()
