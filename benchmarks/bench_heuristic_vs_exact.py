"""Extension bench — heuristic (MMD [13]) vs exact gate counts.

The paper's introduction positions exact synthesis against heuristic
methods such as the transformation-based algorithm of Miller, Maslov and
Dueck [13].  This bench quantifies the gap on the completely specified
default-tier benchmarks: the heuristic is near-instant but overshoots
the minimal gate count, often by 2-3x, and its quantum costs overshoot
accordingly.  Expected shape: MMD time << exact time; MMD gates >= exact
D for every function, with strict inequality on all non-trivial ones.

Run:  pytest benchmarks/bench_heuristic_vs_exact.py --benchmark-only -s
"""

import pytest

from _tables import engine_timeout, print_table, tier
from repro.functions import table1_entries
from repro.synth import synthesize, transformation_synthesize

CASES = [e for e in table1_entries(tier()) if e.completely_specified]

_results = {}


def _run_exact(entry):
    result = synthesize(entry.spec(), kinds=("mct",), engine="bdd",
                        time_limit=engine_timeout())
    _results[(entry.name, "exact")] = result
    return result


def _run_heuristic(entry):
    circuit = transformation_synthesize(entry.spec())
    _results[(entry.name, "mmd")] = circuit
    return circuit


@pytest.mark.parametrize("entry", CASES, ids=lambda e: e.name)
def test_heuristic(benchmark, entry):
    circuit = benchmark.pedantic(_run_heuristic, args=(entry,),
                                 rounds=1, iterations=1)
    assert entry.spec().matches_circuit(circuit)


@pytest.mark.parametrize("entry", CASES, ids=lambda e: e.name)
def test_exact(benchmark, entry):
    result = benchmark.pedantic(_run_exact, args=(entry,),
                                rounds=1, iterations=1)
    if result.realized:
        mmd = _results.get((entry.name, "mmd"))
        if mmd is not None:
            assert len(mmd) >= result.depth


def teardown_module(module):
    header = (f"{'BENCH':12s} {'MMD gates':>9s} {'MMD QC':>7s} "
              f"{'exact D':>8s} {'exact QCmin':>11s} {'overhead':>9s}")
    rows = []
    for entry in CASES:
        mmd = _results.get((entry.name, "mmd"))
        exact = _results.get((entry.name, "exact"))
        if mmd is None or exact is None or not exact.realized:
            continue
        overhead = len(mmd) / exact.depth if exact.depth else float("inf")
        rows.append(f"{entry.name:12s} {len(mmd):9d} {mmd.quantum_cost():7d} "
                    f"{exact.depth:8d} {exact.quantum_cost_min:11d} "
                    f"{overhead:8.2f}x")
    print_table("EXTENSION — MMD heuristic vs exact synthesis (MCT)",
                header, rows,
                "Heuristic synthesis is instant but overshoots the "
                "minimum — the motivation for exact methods.")
