"""Ablation A4 — encoding size: per-row SAT vs polynomial QBF.

Section 3 of the paper pins the weakness of the SAT baselines: "the
respective constraints ... are duplicated for the remaining 2^n - 1
truth table lines.  Thus, the instances grow exponentially."  This bench
builds (without solving) the depth-3 instances of both encoders for the
graycode family at n = 2..6 and reports variables and clauses.  Expected
shape: SAT clause counts roughly double per added line while the QBF
matrix grows only with the library size q = n * 2^(n-1) — the ratio
SAT/QBF grows without bound.

Run:  pytest benchmarks/bench_ablation_encoding_size.py --benchmark-only -s
"""

import pytest

from _tables import print_table
from repro.core.library import GateLibrary
from repro.functions.parametric import graycode
from repro.synth.qbf_engine import QbfSolverEngine
from repro.synth.sat_engine import SatBaselineEngine

DEPTH = 3
SIZES = [2, 3, 4, 5, 6]

_results = {}


def _encode(n, flavour):
    spec = graycode(n)
    library = GateLibrary.mct(n)
    if flavour == "sat":
        cnf, _ = SatBaselineEngine(spec, library).encode(DEPTH)
        stats = (cnf.num_vars, len(cnf.clauses))
    else:
        formula, _ = QbfSolverEngine(spec, library).encode(DEPTH)
        stats = (formula.cnf.num_vars, len(formula.cnf.clauses))
    _results[(n, flavour)] = stats
    return stats


@pytest.mark.parametrize("flavour", ["sat", "qbf"])
@pytest.mark.parametrize("n", SIZES)
def test_encoding_size(benchmark, n, flavour):
    stats = benchmark.pedantic(_encode, args=(n, flavour),
                               rounds=1, iterations=1)
    assert stats[1] > 0


def teardown_module(module):
    header = (f"{'n':>2s} {'SAT vars':>9s} {'SAT clauses':>12s} "
              f"{'QBF vars':>9s} {'QBF clauses':>12s} {'ratio':>7s}")
    rows = []
    for n in SIZES:
        sat = _results.get((n, "sat"))
        qbf = _results.get((n, "qbf"))
        if sat is None or qbf is None:
            continue
        ratio = sat[1] / qbf[1]
        rows.append(f"{n:2d} {sat[0]:9d} {sat[1]:12d} "
                    f"{qbf[0]:9d} {qbf[1]:12d} {ratio:6.2f}x")
    print_table(f"ABLATION A4 — encoding growth at depth {DEPTH} "
                f"(graycode family)", header, rows,
                "SAT duplicates the cascade per truth-table row (2^n); "
                "the QBF matrix is encoded once.")
