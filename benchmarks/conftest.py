"""Benchmark-harness configuration."""

import sys
from pathlib import Path

# Make `benchmarks/_tables.py` importable regardless of invocation dir.
sys.path.insert(0, str(Path(__file__).parent))
