"""Parallel execution vs serial — correctness-pinned speedup bench.

Three comparisons over the Table 1 smoke set, every one asserting that
the parallel run computes *exactly* the serial answer (depths, solution
counts, quantum-cost ranges — via canonical run records with the
volatile timing/placement fields stripped) before any speedup number is
reported:

* **suite pool** — the whole smoke set, 1 worker vs ``REPRO_WORKERS``
  (default 4) workers through :func:`repro.parallel.run_suite`.  The
  speedup scales with available cores; ≥ 2x is asserted when the
  machine has ≥ 4 CPUs (CI runners do).
* **portfolio racing** — per benchmark, the summed wall-clock of all
  four engines run serially vs one ``engine="portfolio"`` race.  The
  race finishes when the fastest engine does, so the win holds even on
  a single core (the engine runtime spread is orders of magnitude);
  ≥ 2x aggregate is asserted unconditionally.
* **speculative depth pipelining** — ``sat`` with ``workers=3`` vs
  serial ``sat``: identical committed trajectory asserted, wasted
  speculation reported.

Exports ``BENCH_parallel.json`` (honoring ``REPRO_TRACE_DIR`` /
``REPRO_TRACE=0``) with all three sections plus ``workers`` and
``cpu_count`` provenance.

Run:  cd benchmarks && PYTHONPATH=../src python -m pytest bench_parallel.py -q -s
 or:  PYTHONPATH=src python benchmarks/bench_parallel.py
"""

import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _tables import append_history, machine_calibration, print_table
import repro.obs as obs
from repro.functions import get_spec
from repro.parallel import SynthesisTask, run_suite
from repro.synth import synthesize

#: Table 1 smoke set: fast enough for CI, slow enough to measure.
SMOKE_SET = ("3_17", "mod5d1_s", "mod5d2_s", "mod5mils",
             "decod24-v0", "decod24-v3")

#: Benchmarks for the portfolio comparison (largest engine spread).
PORTFOLIO_SET = ("3_17", "mod5d1_s", "mod5d2_s")

ENGINES = ("bdd", "sword", "sat", "qbf")

TIME_LIMIT = 60.0

_payload = {}


def _workers():
    return max(2, int(os.environ.get("REPRO_WORKERS", "4")))


def _json_path():
    if os.environ.get("REPRO_TRACE") == "0":
        return None
    directory = os.environ.get("REPRO_TRACE_DIR", ".")
    return os.path.join(directory, "BENCH_parallel.json")


def _smoke_tasks():
    return [SynthesisTask(spec=get_spec(name), engine="bdd", kinds=("mct",),
                          time_limit=TIME_LIMIT, label=name)
            for name in SMOKE_SET]


def _answer(result):
    return {"depth": result.depth, "num_solutions": result.num_solutions,
            "qc_min": result.quantum_cost_min,
            "qc_max": result.quantum_cost_max}


def test_suite_pool_speedup():
    """N-worker suite == 1-worker suite, record for record; speed scales."""
    serial = run_suite(_smoke_tasks(), workers=1)
    parallel = run_suite(_smoke_tasks(), workers=_workers())
    assert all(r.ok for r in serial.reports)
    assert all(r.ok for r in parallel.reports)
    for ser, par in zip(serial.reports, parallel.reports):
        assert obs.canonical_record(ser.record) \
            == obs.canonical_record(par.record), \
            f"{ser.label}: parallel run diverged from serial"
    speedup = serial.runtime / parallel.runtime
    cpus = os.cpu_count() or 1
    _payload["suite"] = {
        "benchmarks": list(SMOKE_SET),
        "engine": "bdd",
        "serial_s": serial.runtime,
        "parallel_s": parallel.runtime,
        "workers": _workers(),
        "cpu_count": cpus,
        "speedup": speedup,
        "answers": {r.label: _answer(r.result) for r in parallel.reports},
    }
    # Wall-clock scaling needs actual cores; the identity assertions
    # above hold regardless.
    if cpus >= 4:
        assert speedup >= 2.0, \
            f"suite speedup {speedup:.2f}x < 2x on {cpus} CPUs"


def test_portfolio_speedup():
    """Racing the engines beats running them back to back, >= 2x."""
    total_serial = 0.0
    total_portfolio = 0.0
    cases = {}
    for name in PORTFOLIO_SET:
        spec = get_spec(name)
        serial_times = {}
        answers = {}
        for engine in ENGINES:
            start = time.perf_counter()
            result = synthesize(spec, kinds=("mct",), engine=engine,
                                time_limit=TIME_LIMIT)
            serial_times[engine] = time.perf_counter() - start
            assert result.realized, f"{name}/{engine}: {result.status}"
            answers[engine] = result.depth
        assert len(set(answers.values())) == 1, \
            f"{name}: engines disagree on depth: {answers}"

        start = time.perf_counter()
        raced = synthesize(spec, kinds=("mct",), engine="portfolio",
                           time_limit=TIME_LIMIT)
        portfolio_wall = time.perf_counter() - start
        assert raced.realized
        # The race must return one of the engines' exact answers.
        assert raced.depth == next(iter(answers.values())), \
            f"{name}: portfolio depth {raced.depth} != {answers}"
        serial_sum = sum(serial_times.values())
        total_serial += serial_sum
        total_portfolio += portfolio_wall
        cases[name] = {
            "serial_sum_s": serial_sum,
            "serial_per_engine_s": serial_times,
            "portfolio_s": portfolio_wall,
            "winner": raced.winner_engine,
            "depth": raced.depth,
            "speedup": serial_sum / portfolio_wall,
        }
    speedup = total_serial / total_portfolio
    _payload["portfolio"] = {
        "benchmarks": list(PORTFOLIO_SET),
        "serial_sum_s": total_serial,
        "portfolio_sum_s": total_portfolio,
        "speedup": speedup,
        "cases": cases,
    }
    assert speedup >= 2.0, \
        f"portfolio speedup {speedup:.2f}x < 2x (even single-core the " \
        f"race should finish with the fastest engine)"


def test_speculative_trajectory():
    """Depth pipelining commits the serial trajectory; waste is counted."""
    spec = get_spec("3_17")
    serial = synthesize(spec, kinds=("mct",), engine="sat",
                        time_limit=TIME_LIMIT)
    piped = synthesize(spec, kinds=("mct",), engine="sat", workers=3,
                       time_limit=TIME_LIMIT)
    assert piped.depth == serial.depth
    assert [s.decision for s in piped.per_depth] \
        == [s.decision for s in serial.per_depth]
    assert _answer(piped) == _answer(serial)
    wasted = piped.metrics["driver.speculation_wasted_depths"]
    _payload["speculative"] = {
        "benchmark": "3_17",
        "engine": "sat",
        "workers": 3,
        "serial_s": serial.runtime,
        "pipelined_s": piped.runtime,
        "depth": piped.depth,
        "wasted_depths": wasted,
        "dispatched_depths": piped.metrics["driver.speculation_dispatched"],
    }


def _export():
    if not _payload:
        return
    _payload.update({
        "bench": "parallel",
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "workers": _workers(),
        "cpu_count": os.cpu_count() or 1,
        "calibration_s": machine_calibration(),
    })
    path = _json_path()
    if path:
        with open(path, "w") as handle:
            json.dump(_payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    append_history("parallel", _payload)
    rows = []
    suite = _payload.get("suite")
    if suite:
        rows.append(f"{'suite pool':16s} {suite['serial_s']:9.2f}s "
                    f"{suite['parallel_s']:9.2f}s {suite['speedup']:7.2f}x "
                    f"({suite['workers']} workers, {suite['cpu_count']} CPUs)")
    portfolio = _payload.get("portfolio")
    if portfolio:
        rows.append(f"{'portfolio race':16s} {portfolio['serial_sum_s']:9.2f}s "
                    f"{portfolio['portfolio_sum_s']:9.2f}s "
                    f"{portfolio['speedup']:7.2f}x "
                    f"(vs all engines back to back)")
    speculative = _payload.get("speculative")
    if speculative:
        rows.append(f"{'speculative sat':16s} {speculative['serial_s']:9.2f}s "
                    f"{speculative['pipelined_s']:9.2f}s "
                    f"{'':>8s} ({speculative['wasted_depths']} wasted depths)")
    header = f"{'MODE':16s} {'SERIAL':>10s} {'PARALLEL':>10s} {'SPEEDUP':>8s}"
    print_table("PARALLEL — identical answers asserted, then speed",
                header, rows,
                "Suite scaling needs cores; the portfolio win is "
                "scheduling, not parallel hardware.")


def teardown_module(module):
    _export()


if __name__ == "__main__":
    test_suite_pool_speedup()
    test_portfolio_speedup()
    test_speculative_trajectory()
    _export()
