"""Shared infrastructure for the paper-table benchmark harness.

Environment knobs:

* ``REPRO_FULL=1``      — include the full tier (hwb4, 4_49, graycode6,
  ALU-v*, the 5-line stand-ins); default runs the fast tier only.
* ``REPRO_TIMEOUT=SEC`` — per-engine timeout per benchmark (default 30,
  the paper used 2000 CPU seconds on 2008 hardware; raise it for tighter
  improvement bounds on the cells that time out).
* ``REPRO_TRACE=0``     — disable the JSONL run-record export; by default
  every table cell appends a schema-valid record (see
  ``docs/observability.md``) to ``BENCH_<table>.jsonl`` so the stored
  trajectories are self-describing.
* ``REPRO_TRACE_DIR=D`` — directory for the ``BENCH_*.jsonl`` files
  (default: current directory).
* ``REPRO_WORKERS=N``    — process-pool size for the table sweeps
  (default: min(4, CPUs)); the cells run through
  :func:`repro.parallel.run_suite`, so N > 1 parallelizes them with
  crash isolation while keeping the run records byte-identical to a
  serial sweep (modulo the volatile timing/placement fields).

Paper-reported reference values are stored here so each bench prints a
"paper vs measured" row.  The available copy of the paper has partly
garbled tables; only confidently legible values are recorded, the rest
are None.  Stand-in benchmarks (see DESIGN.md section 3) synthesize a
different concrete function than the RevLib original, so their paper
depths are reported as "paper (original)".
"""

from __future__ import annotations

import os
import subprocess
import time
from typing import Dict, Optional

__all__ = ["tier", "engine_timeout", "trace_file", "workers",
           "history_file", "append_history", "machine_calibration",
           "PAPER_TABLE1", "PAPER_NOTES", "format_time", "print_table"]

#: Schema tag of one benchmarks/history.jsonl line.
HISTORY_FORMAT = "repro-bench-history-v1"


def tier() -> str:
    return "full" if os.environ.get("REPRO_FULL") == "1" else "default"


def workers() -> int:
    """Suite pool size: ``REPRO_WORKERS`` env, else min(4, CPUs)."""
    from repro.parallel import default_workers
    return default_workers()


def engine_timeout() -> float:
    return float(os.environ.get("REPRO_TIMEOUT", "30"))


def trace_file(table: str) -> Optional[str]:
    """JSONL run-record target for a table's cells (None = disabled)."""
    if os.environ.get("REPRO_TRACE") == "0":
        return None
    directory = os.environ.get("REPRO_TRACE_DIR", ".")
    return os.path.join(directory, f"BENCH_{table}.jsonl")


def history_file() -> Optional[str]:
    """The benchmark-history ledger target (None = disabled).

    Defaults to ``benchmarks/history.jsonl`` next to this module, so
    every harness run appends to the same ledger regardless of the
    working directory.  ``REPRO_HISTORY=0`` disables the append,
    ``REPRO_HISTORY_FILE`` redirects it.
    """
    if os.environ.get("REPRO_HISTORY") == "0":
        return None
    explicit = os.environ.get("REPRO_HISTORY_FILE")
    if explicit:
        return explicit
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "history.jsonl")


def _git_commit() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


_calibration: Optional[float] = None


def machine_calibration() -> float:
    """Best-of-N machine-speed calibration, measured once per process.

    Exported as the ``calibration_s`` key of every ``BENCH_*.json``
    payload so ``repro bench diff`` can normalize wall-clock keys
    across hosts (see :mod:`repro.obs.benchdiff`).
    """
    global _calibration
    if _calibration is None:
        from repro.obs.benchdiff import calibrate
        _calibration = calibrate()
    return _calibration


def append_history(bench: str, payload: Dict) -> Optional[str]:
    """Append one keyed summary line for a finished bench payload.

    The line carries every numeric leaf of the payload under dotted
    keys (the exact flattening ``repro bench diff`` compares), plus
    provenance: bench name, timestamp and — when available — the git
    commit.  Crash-safe append; returns the path written, or None when
    history is disabled.
    """
    path = history_file()
    if path is None:
        return None
    from repro.obs import append_jsonl_line
    from repro.obs.benchdiff import flatten_numeric
    line = {
        "format": HISTORY_FORMAT,
        "bench": bench,
        "unix_time": time.time(),
        "commit": _git_commit(),
        "keys": flatten_numeric(payload),
    }
    append_jsonl_line(path, line)
    return path


#: Table 1 reference values: name -> (paper D with MCT, paper BDD seconds).
#: None = not legible in the available copy.
PAPER_TABLE1: Dict[str, tuple] = {
    "mod5mils": (5, None),
    "graycode6": (5, None),
    "3_17": (6, None),
    "mod5d1": (7, None),
    "mod5d2": (8, None),
    "hwb4": (11, 20.38),
    "4_49": (12, None),
    "rd32-v0": (4, None),
    "rd32-v1": (5, None),
    "mod5-v0": (None, None),
    "mod5-v1": (None, None),
    "decod24-v0": (None, None),
    "decod24-v1": (None, None),
    "decod24-v2": (None, None),
    "decod24-v3": (None, None),
    "ALU-v0": (6, None),
    "ALU-v1": (7, 30.42),
    "ALU-v2": (7, 34.72),
    "ALU-v3": (7, 45.69),
}

PAPER_NOTES = {
    "table1": ("Paper: SAT/SWORD/QBF time out (>2000s) on hwb4 and 4_49; "
               "the BDD engine solves hwb4 in 20.38s — a >98x improvement. "
               "SWORD beats the QBF-solver engine, loses to BDD on "
               "non-trivial functions."),
    "table2": ("Paper: the BDD engine returns all minimal networks; e.g. "
               "for 4_49 the best realization needs 32 elementary quantum "
               "gates while the worst needs more than 70."),
    "table3": ("Paper: extended libraries shrink realizations — hwb4 drops "
               "from 11 MCT gates to 8 with Peres gates; runtimes grow "
               "with the library, except where a smaller depth saves "
               "iterations."),
}


def format_time(seconds: Optional[float], timed_out: bool = False) -> str:
    if seconds is None or timed_out:
        return f">{engine_timeout():.0f}s"
    return f"{seconds:8.2f}s"


def print_table(title: str, header: str, rows, note: str = "") -> None:
    """Print an assembled paper table and persist it to paper_tables.txt.

    The persistence matters because pytest captures teardown output
    unless run with ``-s``: the side file always carries the tables.
    """
    lines = ["", "=" * max(len(header), len(title)), title,
             "=" * max(len(header), len(title)), header, "-" * len(header)]
    lines.extend(str(row) for row in rows)
    if note:
        lines.append("-" * len(header))
        lines.append(note)
    lines.append("")
    text = "\n".join(lines)
    print(text)
    target = os.environ.get("REPRO_TABLES_FILE", "paper_tables.txt")
    with open(target, "a") as handle:
        handle.write(text + "\n")
