"""Ablation A1 — BDD variable order: X before Y vs Y before X.

Section 5.2 fixes the order "X, Y" and warns that the alternative
"leads to a blow up of the BDD representation since in this case the BDD
for F_d would already represent all possible functions in n variables
which are synthesizable with at most d gates".  This bench measures
exactly that: the same depth decision is run monolithically under both
orders, recording runtime and the node count of the manager afterwards.
Expected shape: the Y,X order is consistently slower and larger, with
the gap widening in depth.

Run:  pytest benchmarks/bench_ablation_var_order.py --benchmark-only -s
"""

import pytest

from _tables import print_table
from repro.core.library import GateLibrary
from repro.functions import get_spec
from repro.synth.bdd_engine import BddSynthesisEngine

#: (benchmark, depth of the decision to measure — its minimal depth)
CASES = [("graycode4", 3), ("3_17", 6), ("rd32-v0", 4)]

_results = {}


def _run(name, depth, order):
    spec = get_spec(name)
    engine = BddSynthesisEngine(spec, GateLibrary.mct(spec.n_lines),
                                incremental=False, var_order=order)
    outcome = engine.decide(depth)
    _results[(name, order)] = (outcome, engine)
    return outcome


@pytest.mark.parametrize("order", ["xy", "yx"])
@pytest.mark.parametrize("name,depth", CASES, ids=[c[0] for c in CASES])
def test_var_order(benchmark, name, depth, order):
    outcome = benchmark.pedantic(_run, args=(name, depth, order),
                                 rounds=1, iterations=1)
    assert outcome.status == "sat"


def teardown_module(module):
    header = (f"{'BENCH':12s} {'order':>6s} {'status':>7s} "
              f"{'manager nodes':>14s}")
    rows = []
    for name, _ in CASES:
        for order in ("xy", "yx"):
            entry = _results.get((name, order))
            if entry is None:
                continue
            outcome, engine = entry
            # The monolithic manager of the last decide() call.
            nodes = outcome.detail.get("nodes", "-")
            rows.append(f"{name:12s} {order:>6s} {outcome.status:>7s} "
                        f"{str(nodes):>14s}")
    print_table("ABLATION A1 — variable order X,Y vs Y,X (monolithic)",
                header, rows,
                "Paper: the Y,X order blows up; X,Y is essential.")
