"""A reduced ordered binary decision diagram (ROBDD) package, v2 — FROZEN.

Vendored byte-copy of ``src/repro/bdd/manager.py`` as it stood before
the packed-table v3 core, kept as the benchmark opponent for
``bench_bdd_core.py``.  Do not improve it: its whole value is being a
stable yardstick.  The only additions are this banner and the
``node_store_bytes`` estimator at the end of the file.

Implements the Bryant-style shared-BDD manager the paper relies on (it
used CUDD), with the two structural optimizations that make CUDD fast
and that the v1 pure-Python core lacked:

**Complement edges** (Brace/Rudell/Bryant).  An *edge* is an integer
``(node_index << 1) | complement``: the low bit says "interpret the
pointed-to function negated".  Negation is ``edge ^ 1`` — O(1), no
traversal, no new nodes — and a function and its complement share one
node structure, roughly halving the unique table.  There is a single
terminal node (index 0): ``FALSE`` is its regular edge (``0``) and
``TRUE`` its complemented edge (``1``), so the old terminal constants
keep their values and ``edge <= 1`` still tests for a terminal.
Canonicity requires one normalization rule: a stored node's *high* edge
is never complemented (:meth:`BddManager._mk` flips all three parts
when it would be), which keeps "equal functions <=> equal edge ints".

**Op-tagged, argument-normalized computed caches.**  Binary AND and XOR
get their own apply recursions instead of being expressed as generic
ITE triples; cache keys are ``(op, f, g)`` with commutative arguments
sorted and (for XOR, whose complements factor out) complement bits
stripped, and ITE triples are reduced toward standard form (first
argument regular, then-branch regular, constant branches routed into
the binary ops).  Distinct call shapes that denote the same computation
therefore hit the same cache line.  Keys are packed into single
integers — ``((f << 32 | g) << 3) | op`` and ``(var << 64) | (lo << 32)
| hi`` for the unique table — because hashing one int is measurably
cheaper than allocating and hashing a tuple in these innermost loops
(edges stay below ``2**32``; a pure-Python store exhausts memory long
before that).

Quantified variable sets are **bitmasks**, so dropping the variables
above a node's top level inside :meth:`forall`/:meth:`exists` is two
shifts instead of a tuple rebuild per recursion step.

Nodes are addressed by edges everywhere in the public API: ``0`` is
FALSE, ``1`` is TRUE, internal edges are ``>= 2``.  Variables are
identified by their *order position* (``0`` topmost) and appended with
:meth:`BddManager.add_var`, so the variable order equals creation
order.  This matches the paper's usage: the circuit inputs ``X`` are
created first, the gate-select inputs ``Y`` are appended per depth
iteration, yielding the fixed order "X before Y" that Section 5.2
identifies as essential.  :meth:`low`/:meth:`high` propagate the
complement bit of the edge they are given, so generic traversals never
need to know about the encoding.
"""

from __future__ import annotations

import sys
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)

__all__ = ["BddManager", "FALSE", "TRUE"]

FALSE = 0
TRUE = 1

# Cache-key operator tags.  The apply cache and the quantify cache are
# separate dicts (they are cleared together but sized independently);
# within each, the leading tag keeps differently-shaped keys disjoint.
_OP_AND = 0
_OP_XOR = 1
_OP_ITE = 2
_OP_EXISTS = 3
_OP_FORALL = 4
_OP_RESTRICT0 = 5
_OP_RESTRICT1 = 6
_OP_MATCH = 7


class BddManager:
    """Shared ROBDD store with a unique table and computed caches."""

    def __init__(self, num_vars: int = 0, var_names: Optional[Sequence[str]] = None):
        # Parallel arrays indexed by *node index* (edge >> 1); index 0 is
        # the terminal (pseudo-level +inf, placeholder children).
        self._var: List[int] = [-1]
        self._lo: List[int] = [FALSE]
        self._hi: List[int] = [FALSE]
        # Keys are packed ints (see the module docstring); the quantify
        # cache also holds tuple keys for the n-ary fused match operation.
        self._unique: Dict[int, int] = {}
        self._apply_cache: Dict[int, int] = {}
        self._quant_cache: Dict[object, int] = {}
        self._names: List[str] = []
        self.num_vars = 0
        # Optional node-allocation tick: callers (the synthesis engines'
        # deadline guard) register a callback fired every
        # ``interval`` fresh node allocations, so a time limit is
        # honored *inside* one long apply run, not only between them.
        self._alloc_tick: Optional[Callable[[], None]] = None
        self._tick_interval = 4096
        self._tick_countdown = 4096
        # Plain-integer instrumentation counters (see stats()); kept as
        # attributes rather than a registry so the hot apply paths pay
        # at most one increment.  Cache misses are not counted where
        # they happen: every miss inserts exactly one computed-cache
        # entry, so cumulative misses = live entries + entries dropped
        # by cache clears, tracked in _ite_dropped.
        self.ite_cache_hits = 0
        self._ite_dropped = 0
        self.quant_calls = 0
        self.quant_cache_hits = 0
        self.cache_clears = 0
        self.peak_nodes = 1
        for i in range(num_vars):
            name = var_names[i] if var_names else None
            self.add_var(name)

    # -- variables ---------------------------------------------------------------

    def add_var(self, name: Optional[str] = None) -> int:
        """Append a new variable at the bottom of the order; returns its index."""
        index = self.num_vars
        self.num_vars += 1
        self._names.append(name if name is not None else f"v{index}")
        # Apply recursions descend one level per frame, so the needed
        # recursion depth is bounded by the variable count.  Keeping the
        # check here (variables are added rarely) scopes the limit bump
        # to managers that actually grow deep, instead of mutating
        # interpreter-global state at import time as v1 did.
        if sys.getrecursionlimit() < 4 * self.num_vars + 500:
            sys.setrecursionlimit(4 * self.num_vars + 500)
        return index

    def var_name(self, index: int) -> str:
        return self._names[index]

    def var(self, index: int) -> int:
        """The BDD of the single variable ``index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"unknown variable {index}")
        return self._mk(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """The BDD of the negated variable."""
        return self._mk(index, TRUE, FALSE)

    def literal(self, index: int, positive: bool) -> int:
        return self.var(index) if positive else self.nvar(index)

    # -- node structure ------------------------------------------------------------

    def is_terminal(self, node: int) -> bool:
        return node <= 1

    def is_complement(self, node: int) -> bool:
        """Does this edge carry the complement bit?  (TRUE does: ¬FALSE.)"""
        return bool(node & 1)

    def regular(self, node: int) -> int:
        """The edge with the complement bit cleared."""
        return node & -2

    def top_var(self, node: int) -> int:
        """Order position of the node's variable (terminals raise)."""
        if node <= 1:
            raise ValueError("terminals have no variable")
        return self._var[node >> 1]

    def low(self, node: int) -> int:
        """Low cofactor edge, with the incoming complement bit applied."""
        return self._lo[node >> 1] ^ (node & 1)

    def high(self, node: int) -> int:
        """High cofactor edge, with the incoming complement bit applied."""
        return self._hi[node >> 1] ^ (node & 1)

    def _level(self, node: int) -> int:
        """Level used for ordering; terminals sink below every variable."""
        return self._var[node >> 1] if node > 1 else self.num_vars

    def _mk(self, var: int, lo: int, hi: int) -> int:
        """Hash-consed edge constructor enforcing all three canonicity rules.

        Both reduction rules of plain ROBDDs, plus the complement-edge
        normalization: the stored high edge is always regular — when it
        is not, the node is built from the complemented cofactors and
        the complement moves to the returned edge.
        """
        if lo == hi:
            return lo
        comp = hi & 1
        if comp:
            lo ^= 1
            hi ^= 1
        key = (var << 64) | (lo << 32) | hi
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
            if self._alloc_tick is not None:
                self._tick_countdown -= 1
                if self._tick_countdown <= 0:
                    self._tick_countdown = self._tick_interval
                    self._alloc_tick()
        return (node << 1) | comp

    def set_alloc_tick(self, callback: Optional[Callable[[], None]],
                       interval: int = 4096) -> None:
        """Invoke ``callback`` every ``interval`` fresh node allocations.

        The synthesis engines install their deadline check here so a
        ``time_limit`` can interrupt a single large apply run (the
        callback may raise).  ``None`` uninstalls.
        """
        if interval <= 0:
            raise ValueError("tick interval must be positive")
        self._alloc_tick = callback
        self._tick_interval = interval
        self._tick_countdown = interval

    def node_count(self) -> int:
        """Number of live entries in the node store (including the terminal)."""
        return len(self._var)

    def size(self, node: int) -> int:
        """Number of nodes reachable from ``node`` (including the terminal).

        A function and its complement share structure, so ``size(f) ==
        size(not_(f))`` by construction.
        """
        seen: Set[int] = set()
        stack = [node >> 1]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            if index:
                stack.append(self._lo[index] >> 1)
                stack.append(self._hi[index] >> 1)
        return len(seen)

    # -- the apply layer ------------------------------------------------------------
    #
    # Three recursions share the unique table and one computed cache:
    # and_ (commutative, sorted keys), xor (commutative, sorted keys,
    # complements factored out), and the general ite.  or/implies/xnor/
    # not_ are O(1) rewrites into those three.

    def and_(self, f: int, g: int) -> int:
        if f == g:
            return f
        if f > g:
            f, g = g, f
        # After sorting: terminal f, or f/g a complement pair (same node
        # index, opposite bits => ids differing in the low bit only).
        if f == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if f ^ g == 1:
            return FALSE
        key = (((f << 32) | g) << 3) | _OP_AND
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.ite_cache_hits += 1
            return cached
        # Inlined level/cofactor computation: this is the hottest loop
        # in the package, method calls per miss dominate its cost.
        var, lo, hi = self._var, self._lo, self._hi
        fi = f >> 1
        gi = g >> 1
        level = level_f = var[fi]
        level_g = var[gi]
        if level_g < level:
            level = level_g
        if level_f == level:
            fc = f & 1
            f0 = lo[fi] ^ fc
            f1 = hi[fi] ^ fc
        else:
            f0 = f1 = f
        if level_g == level:
            gc = g & 1
            g0 = lo[gi] ^ gc
            g1 = hi[gi] ^ gc
        else:
            g0 = g1 = g
        # _mk inlined: one Python call per miss saved matters here.
        rlo = self.and_(f0, g0)
        rhi = self.and_(f1, g1)
        if rlo == rhi:
            result = rlo
        else:
            comp = rhi & 1
            if comp:
                rlo ^= 1
                rhi ^= 1
            mk_key = (level << 64) | (rlo << 32) | rhi
            node = self._unique.get(mk_key)
            if node is None:
                node = len(var)
                var.append(level)
                lo.append(rlo)
                hi.append(rhi)
                self._unique[mk_key] = node
                if self._alloc_tick is not None:
                    self._tick_countdown -= 1
                    if self._tick_countdown <= 0:
                        self._tick_countdown = self._tick_interval
                        self._alloc_tick()
            result = (node << 1) | comp
        self._apply_cache[key] = result
        return result

    def xor(self, f: int, g: int) -> int:
        # Complements factor out of XOR entirely: strip them from both
        # arguments, fold them into the result.  All four complement
        # variants of a call then share one cache entry.
        comp = (f ^ g) & 1
        f &= -2
        g &= -2
        if f == g:
            return comp  # FALSE ^ comp
        if f > g:
            f, g = g, f
        if f == FALSE:  # the regular terminal edge
            return g ^ comp
        key = (((f << 32) | g) << 3) | _OP_XOR
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.ite_cache_hits += 1
            return cached ^ comp
        var, lo, hi = self._var, self._lo, self._hi
        fi = f >> 1
        gi = g >> 1
        level = level_f = var[fi]
        level_g = var[gi]
        if level_g < level:
            level = level_g
        # f and g are regular here, so their stored children are their
        # cofactors directly.
        if level_f == level:
            f0 = lo[fi]
            f1 = hi[fi]
        else:
            f0 = f1 = f
        if level_g == level:
            g0 = lo[gi]
            g1 = hi[gi]
        else:
            g0 = g1 = g
        # _mk inlined, as in and_.
        rlo = self.xor(f0, g0)
        rhi = self.xor(f1, g1)
        if rlo == rhi:
            result = rlo
        else:
            rcomp = rhi & 1
            if rcomp:
                rlo ^= 1
                rhi ^= 1
            mk_key = (level << 64) | (rlo << 32) | rhi
            node = self._unique.get(mk_key)
            if node is None:
                node = len(var)
                var.append(level)
                lo.append(rlo)
                hi.append(rhi)
                self._unique[mk_key] = node
                if self._alloc_tick is not None:
                    self._tick_countdown -= 1
                    if self._tick_countdown <= 0:
                        self._tick_countdown = self._tick_interval
                        self._alloc_tick()
            result = (node << 1) | rcomp
        self._apply_cache[key] = result
        return result ^ comp

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f AND g) OR (NOT f AND h)``."""
        # Terminal short cuts.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        # Standard-triple reduction: make the first argument regular ...
        if f & 1:
            f ^= 1
            g, h = h, g
        # ... collapse branches that repeat the selector ...
        if g == f:
            g = TRUE
        elif g == f ^ 1:
            g = FALSE
        if h == f:
            h = FALSE
        elif h == f ^ 1:
            h = TRUE
        if g == h:
            return g
        # ... and route constant-branch shapes into the tagged binary
        # ops, where argument normalization buys more cache sharing.
        if g == TRUE:
            if h == FALSE:
                return f
            return self.and_(f ^ 1, h ^ 1) ^ 1  # f OR h
        if g == FALSE:
            if h == TRUE:
                return f ^ 1
            return self.and_(f ^ 1, h)  # NOT f AND h
        if h == FALSE:
            return self.and_(f, g)
        if h == TRUE:
            return self.and_(f, g ^ 1) ^ 1  # f IMPLIES g
        if g == h ^ 1:
            return self.xor(f, h)  # ite(f, ¬h, h)
        # General case; normalize the then-branch regular so a triple
        # and its complement share one cache entry.
        comp = g & 1
        if comp:
            g ^= 1
            h ^= 1
        key = (((((f << 32) | g) << 32) | h) << 3) | _OP_ITE
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.ite_cache_hits += 1
            return cached ^ comp
        var, lo, hi = self._var, self._lo, self._hi
        fi = f >> 1
        gi = g >> 1
        hi_i = h >> 1
        level = var[fi]  # all three are non-terminal past the routing
        level_g = var[gi]
        if level_g < level:
            level = level_g
        level_h = var[hi_i]
        if level_h < level:
            level = level_h
        if var[fi] == level:
            f0 = lo[fi]
            f1 = hi[fi]  # f is regular
        else:
            f0 = f1 = f
        if level_g == level:
            g0 = lo[gi]
            g1 = hi[gi]  # g is regular
        else:
            g0 = g1 = g
        if level_h == level:
            hc = h & 1
            h0 = lo[hi_i] ^ hc
            h1 = hi[hi_i] ^ hc
        else:
            h0 = h1 = h
        # _mk inlined, as in and_.
        rlo = self.ite(f0, g0, h0)
        rhi = self.ite(f1, g1, h1)
        if rlo == rhi:
            result = rlo
        else:
            rcomp = rhi & 1
            if rcomp:
                rlo ^= 1
                rhi ^= 1
            mk_key = (level << 64) | (rlo << 32) | rhi
            node = self._unique.get(mk_key)
            if node is None:
                node = len(var)
                var.append(level)
                lo.append(rlo)
                hi.append(rhi)
                self._unique[mk_key] = node
                if self._alloc_tick is not None:
                    self._tick_countdown -= 1
                    if self._tick_countdown <= 0:
                        self._tick_countdown = self._tick_interval
                        self._alloc_tick()
            result = (node << 1) | rcomp
        self._apply_cache[key] = result
        return result ^ comp

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        if node > 1 and self._var[node >> 1] == level:
            comp = node & 1
            return self._lo[node >> 1] ^ comp, self._hi[node >> 1] ^ comp
        return node, node

    # -- connectives ------------------------------------------------------------------

    def not_(self, f: int) -> int:
        """Negation is a complement-bit flip: O(1), no traversal."""
        return f ^ 1

    def or_(self, f: int, g: int) -> int:
        return self.and_(f ^ 1, g ^ 1) ^ 1

    def xnor(self, f: int, g: int) -> int:
        """Boolean equality — the paper's ``F_d = f`` comparator."""
        return self.xor(f, g) ^ 1

    def implies(self, f: int, g: int) -> int:
        return self.and_(f, g ^ 1) ^ 1

    def conj(self, nodes: Iterable[int]) -> int:
        result = TRUE
        for node in nodes:
            result = self.and_(result, node)
            if result == FALSE:
                return FALSE
        return result

    def disj(self, nodes: Iterable[int]) -> int:
        result = FALSE
        for node in nodes:
            result = self.or_(result, node)
            if result == TRUE:
                return TRUE
        return result

    # -- restriction / composition -------------------------------------------------------

    def restrict(self, f: int, var: int, value: bool) -> int:
        """Cofactor of ``f`` with variable ``var`` fixed to ``value``."""
        if f <= 1:
            return f
        comp = f & 1
        f ^= comp
        index = f >> 1
        top = self._var[index]
        if top > var:
            return f ^ comp
        if top == var:
            return (self._hi[index] if value else self._lo[index]) ^ comp
        key = (((f << 32) | var) << 3) | (_OP_RESTRICT1 if value
                                          else _OP_RESTRICT0)
        cached = self._quant_cache.get(key)
        if cached is None:
            cached = self._mk(top,
                              self.restrict(self._lo[index], var, value),
                              self.restrict(self._hi[index], var, value))
            self._quant_cache[key] = cached
        return cached ^ comp

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute BDD ``g`` for variable ``var`` in ``f``."""
        f0 = self.restrict(f, var, False)
        f1 = self.restrict(f, var, True)
        return self.ite(g, f1, f0)

    # -- quantification --------------------------------------------------------------------

    @staticmethod
    def _var_mask(variables: Iterable[int]) -> int:
        mask = 0
        for v in variables:
            mask |= 1 << v
        return mask

    def exists(self, f: int, variables: Iterable[int]) -> int:
        return self._quantify(f, self._var_mask(variables), forall=False)

    def forall(self, f: int, variables: Iterable[int]) -> int:
        """Universal quantification — ``forall x . f = f|x=0 AND f|x=1``.

        This is the operation Section 5.2 applies to the equality BDD
        over all circuit-input variables.
        """
        return self._quantify(f, self._var_mask(variables), forall=True)

    def _quantify(self, f: int, mask: int, forall: bool) -> int:
        """Quantify the variable set encoded as ``mask`` out of ``f``.

        Complements route through De Morgan duality (``forall x ¬f =
        ¬exists x f``), so the cache holds regular edges only.
        """
        if not mask or f <= 1:
            return f
        if f & 1:
            return self._quantify(f ^ 1, mask, not forall) ^ 1
        index = f >> 1
        level = self._var[index]
        # Drop quantified variables above the node's top variable (two
        # shifts on the mask): they do not occur in f.
        mask = (mask >> level) << level
        if not mask:
            return f
        self.quant_calls += 1
        # The mask is arbitrary precision, so it takes the high bits.
        key = (((mask << 32) | f) << 3) | (_OP_FORALL if forall
                                           else _OP_EXISTS)
        cached = self._quant_cache.get(key)
        if cached is not None:
            self.quant_cache_hits += 1
            return cached
        lo = self._quantify(self._lo[index], mask, forall)
        if (mask >> level) & 1:
            # The top variable itself is quantified: combine cofactors,
            # short-circuiting the dominant absorbing case.
            if lo == (FALSE if forall else TRUE):
                result = lo
            else:
                hi = self._quantify(self._hi[index], mask, forall)
                result = self.and_(lo, hi) if forall else self.or_(lo, hi)
        else:
            hi = self._quantify(self._hi[index], mask, forall)
            result = self._mk(level, lo, hi)
        self._quant_cache[key] = result
        return result

    def match_forall(self, outputs: Sequence[int], on_bdds: Sequence[int],
                     dc_bdds: Sequence[int], num_inputs: int) -> int:
        """Fused comparator + universal quantifier for Section 5.2.

        Computes ``forall x0..x_{b-1} . AND_l (dc_l OR (outputs_l XNOR
        on_l))`` with ``b = num_inputs`` in a single recursion that
        cofactors all ``3n`` argument BDDs simultaneously, instead of
        first materializing the equality BDD over X and Y and then
        quantifying X back out of it.  Once the recursion has descended
        past the input block (every argument's top variable is ``>=
        num_inputs``), the spec BDDs are terminals — their support is a
        subset of the inputs — so each line's term collapses to the
        output edge with at most a complement flip, and the conjunction
        short-circuits on FALSE exactly like the absorbing case of
        :meth:`_quantify`.

        Requires every ``on``/``dc`` BDD to depend only on variables
        ``< num_inputs`` (true by construction for spec BDDs built over
        the X block) and the inputs to occupy the top of the variable
        order; the caller keeps the legacy two-step route for the
        ``var_order="yx"`` ablation where they do not.
        """
        var, lo, hi = self._var, self._lo, self._hi
        cache = self._quant_cache
        # A line whose don't-care cover is the constant TRUE constrains
        # nothing — drop it before the recursion ever sees it.  When all
        # remaining covers are the constant FALSE (every permutation
        # spec: no don't-cares at all) the dc column would ride through
        # every cofactor step unchanged, so a stride-2 signature skips
        # it; the stride is part of the memo key because a 2k-tuple and
        # a 3m-tuple can coincide element-wise.
        sig = []
        stride = 2
        for l in range(len(outputs)):
            if dc_bdds[l] != TRUE and dc_bdds[l] != FALSE:
                stride = 3
                break
        for l in range(len(outputs)):
            dc = dc_bdds[l]
            if dc == TRUE:
                continue
            sig.append(outputs[l])
            sig.append(on_bdds[l])
            if stride == 3:
                sig.append(dc)

        def rec(sig: Tuple[int, ...]) -> int:
            # The result depends on the argument edges alone (all inputs
            # below ``num_inputs`` are quantified), so the signature is
            # the whole memo key — no level component needed.
            self.quant_calls += 1
            key = (_OP_MATCH, stride, num_inputs, sig)
            cached = cache.get(key)
            if cached is not None:
                self.quant_cache_hits += 1
                return cached
            level = num_inputs
            for s in sig:
                if s > 1:
                    v = var[s >> 1]
                    if v < level:
                        level = v
            if level >= num_inputs:
                result = TRUE
                if stride == 2:
                    for i in range(0, len(sig), 2):
                        result = self.and_(result, sig[i] ^ sig[i + 1] ^ 1)
                        if result == FALSE:
                            break
                else:
                    for i in range(0, len(sig), 3):
                        dc = sig[i + 2]
                        if dc == TRUE:
                            continue
                        result = self.and_(result, sig[i] ^ sig[i + 1] ^ 1)
                        if result == FALSE:
                            break
            else:
                los = []
                his = []
                for s in sig:
                    if s > 1 and var[s >> 1] == level:
                        c = s & 1
                        los.append(lo[s >> 1] ^ c)
                        his.append(hi[s >> 1] ^ c)
                    else:
                        los.append(s)
                        his.append(s)
                result = rec(tuple(los))
                if result != FALSE:
                    result = self.and_(result, rec(tuple(his)))
            cache[key] = result
            return result

        return rec(tuple(sig))

    # -- evaluation / models -----------------------------------------------------------------

    def evaluate(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a total assignment of the support variables."""
        node = f
        while node > 1:
            index = node >> 1
            var = self._var[index]
            if var not in assignment:
                raise ValueError(f"assignment misses variable {var}")
            child = self._hi[index] if assignment[var] else self._lo[index]
            node = child ^ (node & 1)
        return node == TRUE

    def support(self, f: int) -> Set[int]:
        """The set of variables ``f`` depends on."""
        seen: Set[int] = set()
        result: Set[int] = set()
        stack = [f >> 1]
        while stack:
            index = stack.pop()
            if not index or index in seen:
                continue
            seen.add(index)
            result.add(self._var[index])
            stack.append(self._lo[index] >> 1)
            stack.append(self._hi[index] >> 1)
        return result

    def count_models(self, f: int, variables: Sequence[int]) -> int:
        """Number of satisfying assignments over exactly ``variables``.

        ``variables`` must be a superset of ``support(f)``; variables
        outside the support double the count.  This computes the paper's
        ``#SOL`` column (models over all gate-select inputs).
        """
        var_list = sorted(set(variables))
        missing = self.support(f) - set(var_list)
        if missing:
            raise ValueError(f"variables {sorted(missing)} in support but not counted")
        position = {v: i for i, v in enumerate(var_list)}
        total = len(var_list)

        # Memoized per *edge*: a node and its complement count
        # differently, and both can be reachable in one diagram.
        memo: Dict[int, int] = {}

        def level_of(node: int) -> int:
            return position[self._var[node >> 1]] if node > 1 else total

        def rec(node: int) -> int:
            # models over variables at positions level_of(node)..total-1
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            cached = memo.get(node)
            if cached is not None:
                return cached
            here = level_of(node)
            index = node >> 1
            comp = node & 1
            result = 0
            for child in (self._lo[index] ^ comp, self._hi[index] ^ comp):
                result += rec(child) << (level_of(child) - here - 1)
            memo[node] = result
            return result

        return rec(f) << level_of(f)

    def iter_models(self, f: int, variables: Sequence[int]) -> Iterator[Dict[int, bool]]:
        """Yield every satisfying assignment over exactly ``variables``.

        Path don't-cares are expanded, so the number of yielded models
        equals :meth:`count_models`.  Models come out in lexicographic
        order of the variable list.
        """
        var_list = sorted(set(variables))
        missing = self.support(f) - set(var_list)
        if missing:
            raise ValueError(f"variables {sorted(missing)} in support but not enumerated")

        def rec(node: int, depth: int, partial: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if node == FALSE:
                return
            if depth == len(var_list):
                yield dict(partial)
                return
            var = var_list[depth]
            if node > 1 and self._var[node >> 1] == var:
                comp = node & 1
                branches = ((False, self._lo[node >> 1] ^ comp),
                            (True, self._hi[node >> 1] ^ comp))
            else:
                branches = ((False, node), (True, node))
            for value, child in branches:
                partial[var] = value
                yield from rec(child, depth + 1, partial)
            del partial[var]

        yield from rec(f, 0, {})

    def sat_one(self, f: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment over ``support(f)``; None if UNSAT."""
        if f == FALSE:
            return None
        assignment: Dict[int, bool] = {}
        node = f
        while node > 1:
            index = node >> 1
            comp = node & 1
            lo = self._lo[index] ^ comp
            if lo != FALSE:
                assignment[self._var[index]] = False
                node = lo
            else:
                assignment[self._var[index]] = True
                node = self._hi[index] ^ comp
        return assignment

    # -- building from sets ---------------------------------------------------------------------

    def from_minterms(self, variables: Sequence[int], minterms: Iterable[int]) -> int:
        """The function that is 1 exactly on the given packed minterms.

        Bit ``j`` of a minterm corresponds to ``variables[j]``.  Built
        bottom-up over the sorted variable order for linear-time
        construction per minterm set.
        """
        var_list = list(variables)
        minterm_set = set(minterms)
        if not minterm_set:
            return FALSE
        if any(not 0 <= m < (1 << len(var_list)) for m in minterm_set):
            raise ValueError("minterm out of range")
        # Order positions of variables, topmost first.
        order = sorted(range(len(var_list)), key=lambda j: var_list[j])

        def rec(depth: int, terms: frozenset) -> int:
            if not terms:
                return FALSE
            if depth == len(order):
                return TRUE
            j = order[depth]
            lo_terms = frozenset(t for t in terms if not (t >> j) & 1)
            hi_terms = frozenset(t for t in terms if (t >> j) & 1)
            return self._mk(var_list[j],
                            rec(depth + 1, lo_terms),
                            rec(depth + 1, hi_terms))

        return rec(0, frozenset(minterm_set))

    def minterm(self, assignment: Dict[int, bool]) -> int:
        """Conjunction of literals given by a variable assignment."""
        result = TRUE
        for var in sorted(assignment, reverse=True):
            result = self._mk(var,
                              FALSE if assignment[var] else result,
                              result if assignment[var] else FALSE)
        return result

    # -- maintenance -------------------------------------------------------------------------------

    def cache_size(self) -> int:
        """Total entries across the operation caches."""
        return len(self._apply_cache) + len(self._quant_cache)

    def clear_caches(self) -> None:
        """Drop the operation caches (unique table is kept)."""
        self.cache_clears += 1
        self._ite_dropped += len(self._apply_cache)
        self._apply_cache.clear()
        self._quant_cache.clear()

    def stats(self) -> Dict[str, int]:
        """Instrumentation snapshot, in the ``docs/observability.md`` names.

        Counter values are cumulative over the manager's lifetime and
        survive :meth:`clear_caches`/:meth:`compact`; callers wanting
        per-phase figures diff two snapshots.  The ``ite_*`` names
        cover the whole apply layer (AND, XOR and ITE share one tagged
        cache) — the names predate the v2 split and stay for metric
        stability.
        """
        misses = self._ite_dropped + len(self._apply_cache)
        return {
            "nodes": len(self._var),
            "peak_nodes": max(self.peak_nodes, len(self._var)),
            "num_vars": self.num_vars,
            "ite_calls": self.ite_cache_hits + misses,
            "ite_cache_hits": self.ite_cache_hits,
            "ite_cache_entries": len(self._apply_cache),
            "quant_calls": self.quant_calls,
            "quant_cache_hits": self.quant_cache_hits,
            "quant_cache_entries": len(self._quant_cache),
            "cache_clears": self.cache_clears,
        }

    def compact(self, roots: Sequence[int]) -> List[int]:
        """Mark-and-sweep compaction keeping only nodes reachable from roots.

        Returns the remapped root edges.  All previously handed-out
        edges other than the returned ones become invalid; callers (the
        BDD synthesis engine between depth iterations) must re-root.
        """
        self.peak_nodes = max(self.peak_nodes, len(self._var))
        reachable: Set[int] = {0}
        stack = [root >> 1 for root in roots]
        while stack:
            index = stack.pop()
            if index in reachable:
                continue
            reachable.add(index)
            stack.append(self._lo[index] >> 1)
            stack.append(self._hi[index] >> 1)
        # Preserve index order so children keep lower indices than parents.
        old_ids = sorted(reachable)
        remap: Dict[int, int] = {}
        new_var: List[int] = []
        new_lo: List[int] = []
        new_hi: List[int] = []
        for new_id, old_id in enumerate(old_ids):
            remap[old_id] = new_id
            new_var.append(self._var[old_id])
            if old_id == 0:
                new_lo.append(FALSE)
                new_hi.append(FALSE)
            else:
                old_lo = self._lo[old_id]
                old_hi = self._hi[old_id]
                new_lo.append((remap[old_lo >> 1] << 1) | (old_lo & 1))
                new_hi.append((remap[old_hi >> 1] << 1) | (old_hi & 1))
        self._var, self._lo, self._hi = new_var, new_lo, new_hi
        self._unique = {
            (self._var[i] << 64) | (self._lo[i] << 32) | self._hi[i]: i
            for i in range(1, len(self._var))
        }
        self._ite_dropped += len(self._apply_cache)
        self._apply_cache.clear()
        self._quant_cache.clear()
        return [(remap[root >> 1] << 1) | (root & 1) for root in roots]

    # -- export --------------------------------------------------------------------------------------

    def to_dot(self, f: int, name: str = "bdd") -> str:
        """Graphviz DOT rendering.

        Solid = high edge, dashed = low edge; a dot arrowhead marks a
        complemented edge.  The terminal box is the constant 0; the root
        polarity is shown on the entry edge.
        """
        root_comp = ",arrowhead=dot" if f & 1 else ""
        lines = [f"digraph {name} {{", '  node [shape=circle];',
                 '  n0 [shape=box,label="0"];',
                 '  root [shape=none,label=""];',
                 f"  root -> n{f >> 1} [style=dashed{root_comp}];"]
        seen: Set[int] = set()
        stack = [f >> 1]
        while stack:
            index = stack.pop()
            if not index or index in seen:
                continue
            seen.add(index)
            lo = self._lo[index]
            hi = self._hi[index]
            lo_comp = ",arrowhead=dot" if lo & 1 else ""
            lines.append(f'  n{index} [label="{self._names[self._var[index]]}"];')
            lines.append(f"  n{index} -> n{lo >> 1} [style=dashed{lo_comp}];")
            lines.append(f"  n{index} -> n{hi >> 1};")
            stack.append(lo >> 1)
            stack.append(hi >> 1)
        lines.append("}")
        return "\n".join(lines)


def node_store_bytes(manager: "BddManager") -> int:
    """Measured bytes of the v2 node store, honestly counted.

    The v2 representation pays per node: three list slots (pointers),
    the int objects those slots reference, and one unique-table dict
    entry whose key is a packed big-int.  Each distinct Python object
    is counted once (CPython interns small ints, and equal node indices
    appearing as both list element and dict value share one object),
    so the figure matches what the process actually holds — the number
    ``bench_bdd_core.py``'s memory column divides by ``node_count()``.
    """
    seen = set()
    total = (manager._var.__sizeof__() + manager._lo.__sizeof__()
             + manager._hi.__sizeof__() + manager._unique.__sizeof__())
    for container in (manager._var, manager._lo, manager._hi):
        for obj in container:
            if id(obj) not in seen:
                seen.add(id(obj))
                total += sys.getsizeof(obj)
    for key, value in manager._unique.items():
        for obj in (key, value):
            if id(obj) not in seen:
                seen.add(id(obj))
                total += sys.getsizeof(obj)
    return total
