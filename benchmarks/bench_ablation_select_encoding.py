"""Ablation A5 — gate-select encoding in the SAT baseline: binary vs one-hot.

The original SAT formulation [9] selects the gate per cascade position
with one-hot variables and an exactly-one constraint; the universal-gate
view suggests a binary (logarithmic) encoding instead.  This bench
compares instance sizes and end-to-end synthesis times of the two on the
SAT baseline engine.  Expected shape: one-hot instances carry
``Theta(q^2)`` pairwise-exclusion clauses per position and more
variables, but propagate more directly; binary stays smaller.  Either
way both remain exponentially larger than the QBF matrix (ablation A4).

Run:  pytest benchmarks/bench_ablation_select_encoding.py --benchmark-only -s
"""

import pytest

from _tables import print_table
from repro.core.library import GateLibrary
from repro.functions import get_spec
from repro.synth import synthesize
from repro.synth.sat_engine import SatBaselineEngine

CASES = ["graycode4", "3_17", "rd32-v0"]

_results = {}


def _run(name, encoding):
    spec = get_spec(name)
    result = synthesize(spec, engine="sat", select_encoding=encoding,
                        time_limit=300)
    library = GateLibrary.mct(spec.n_lines)
    engine = SatBaselineEngine(spec, library, select_encoding=encoding)
    cnf, _ = engine.encode(result.depth if result.realized else 3)
    _results[(name, encoding)] = (result, cnf)
    return result


@pytest.mark.parametrize("encoding", ["binary", "onehot"])
@pytest.mark.parametrize("name", CASES)
def test_select_encoding(benchmark, name, encoding):
    result = benchmark.pedantic(_run, args=(name, encoding),
                                rounds=1, iterations=1)
    assert result.realized


def teardown_module(module):
    header = (f"{'BENCH':12s} {'encoding':>8s} {'D':>3s} {'vars':>8s} "
              f"{'clauses':>8s} {'time':>9s}")
    rows = []
    for name in CASES:
        for encoding in ("binary", "onehot"):
            entry = _results.get((name, encoding))
            if entry is None:
                continue
            result, cnf = entry
            rows.append(f"{name:12s} {encoding:>8s} {result.depth:3d} "
                        f"{cnf.num_vars:8d} {len(cnf.clauses):8d} "
                        f"{result.runtime:8.2f}s")
    print_table("ABLATION A5 — SAT select encoding: binary vs one-hot",
                header, rows,
                "Both encodings must find the same minimal depth.")
