"""BDD core v3 (packed tables + native kernel) vs the frozen v2 core.

Races full ``synthesize()`` runs — cascade construction, the per-depth
decision, and solution enumeration — of the packed-table v3 core
against the vendored v2 core (``_v2_bdd.py``, the dict-table manager
this PR replaced) and the even older pre-complement-edge seed core
(``_legacy_bdd.py``) on the two instances the issue pins: 3_17 and the
mod5d1_s stand-in.  Correctness is a hard assertion, not a report:
every core must return the exact depth / #SOL / quantum-cost range
recorded in EXPERIMENTS.md, and v2/v3 must enumerate the *identical
circuit set*, so a speedup can never be bought with a wrong answer.

Beyond wall clock this bench has a **memory column**: both cores build
the full cascade (between-depth compaction off) and report measured
node-store bytes per live node — ``BddManager.node_store_bytes()`` for
v3's flat columns, an honest ``sys.getsizeof`` walk over the lists,
boxed ints and dict entries for v2 (see ``_v2_bdd.node_store_bytes``).
The acceptance gates of the packed-table issue are asserted here:
v3 must hold >= 3x fewer bytes per node, and (when the native kernel
compiled) win the median wall-clock race by >= 1.5x.

Methodology (what the numbers mean):

* Best-of-N wall clock (``REPRO_BENCH_REPS``, default 7).  Best-of is
  the right statistic for a single-threaded CPU-bound race: every source
  of variance (scheduler, frequency scaling, collector) only ever adds
  time.  The median is recorded too and is what the speedup gate uses.
* ``gc.collect(); gc.freeze()`` before *each* timed rep.  The BDD
  engines allocate containers fast enough to trigger full-heap gen-2
  scans, so garbage left by whoever ran earlier in the process would
  otherwise bill its collection cost to whichever core runs second.
* The v2 core runs through the *same* engine and driver via manager
  injection (``bdd_engine.BddManager`` swap), so the race isolates the
  manager — not two diverged synthesis stacks.
* ``peak_rss_bytes`` records ``getrusage`` peak RSS of the whole bench
  process; CI's perf-smoke job asserts a ceiling on it so memory
  regressions gate like wall-clock ones.

Exports ``BENCH_bdd_core.json`` (honoring ``REPRO_TRACE_DIR`` /
``REPRO_TRACE=0`` like the table benches); the committed baseline in
``baselines/`` feeds the ``repro bench diff`` CI gate.

Run:  cd benchmarks && PYTHONPATH=../src python -m pytest bench_bdd_core.py -q -s
 or:  PYTHONPATH=src python benchmarks/bench_bdd_core.py
"""

import gc
import json
import os
import platform
import resource
import sys
import time
from contextlib import contextmanager

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import _v2_bdd
from _legacy_bdd import legacy_synthesize
from _tables import append_history, machine_calibration, print_table
import repro.synth.bdd_engine as bdd_engine
from repro.bdd.tables import kernel_available
from repro.core.library import GateLibrary
from repro.functions import get_spec
from repro.synth import synthesize

#: name -> pinned (depth, #SOL, qc_min, qc_max); the EXPERIMENTS.md
#: values every core must reproduce exactly.
CASES = {
    "3_17": (6, 7, 14, 14),
    "mod5d1_s": (6, 5, 34, 34),
}

#: The issue's acceptance gates (memory always; speed only when the
#: native kernel compiled — the pure-Python fallback keeps answers, not
#: the speedup).
MIN_MEM_RATIO = 3.0
MIN_SPEEDUP_MEDIAN = 1.5

_results = {}


def _reps():
    return max(1, int(os.environ.get("REPRO_BENCH_REPS", "7")))


def _json_path():
    if os.environ.get("REPRO_TRACE") == "0":
        return None
    directory = os.environ.get("REPRO_TRACE_DIR", ".")
    return os.path.join(directory, "BENCH_bdd_core.json")


@contextmanager
def _v2_core():
    """Run the unchanged synthesis stack on the vendored v2 manager."""
    previous = bdd_engine.BddManager
    bdd_engine.BddManager = _v2_bdd.BddManager
    try:
        yield
    finally:
        bdd_engine.BddManager = previous


def _race(fn):
    """Best-of-N wall clock with a frozen heap per rep."""
    times = []
    result = None
    for _ in range(_reps()):
        gc.collect()
        gc.freeze()
        try:
            start = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - start)
        finally:
            gc.unfreeze()
    times.sort()
    return result, times[0], times[len(times) // 2]


def _bytes_per_node(name, depth):
    """Node-store bytes per live node after building the full cascade.

    Between-depth compaction is off so both cores hold the same logical
    population (cascade lines, spec BDDs, and every intermediate the
    run ever interned) when measured — the column compares
    *representation* cost, not reclamation policy.
    """
    spec = get_spec(name)
    library = GateLibrary.mct(spec.n_lines)
    figures = {}
    for core in ("v2", "v3"):
        context = _v2_core() if core == "v2" else _null()
        with context:
            engine = bdd_engine.BddSynthesisEngine(
                spec, library, compact_between_depths=False)
            outcome = None
            for d in range(depth + 1):
                outcome = engine.decide(d)
            assert outcome is not None and outcome.status == "sat", (name, core)
            manager = engine.manager
            count = manager.node_count()
            if hasattr(manager, "node_store_bytes"):
                total = manager.node_store_bytes()
            else:
                total = _v2_bdd.node_store_bytes(manager)
            figures[core] = (total / count, count)
    return figures


@contextmanager
def _null():
    yield


def _run_case(name):
    expected = CASES[name]
    spec = get_spec(name)
    library = GateLibrary.mct(spec.n_lines)

    v3, v3_best, v3_median = _race(
        lambda: synthesize(spec, kinds=("mct",), engine="bdd"))
    v3_answer = (v3.depth, v3.num_solutions,
                 v3.quantum_cost_min, v3.quantum_cost_max)
    assert v3_answer == expected, f"v3 {name}: {v3_answer} != {expected}"
    v3_circuits = sorted(str(c) for c in v3.circuits)

    with _v2_core():
        v2, v2_best, v2_median = _race(
            lambda: synthesize(spec, kinds=("mct",), engine="bdd"))
    v2_answer = (v2.depth, v2.num_solutions,
                 v2.quantum_cost_min, v2.quantum_cost_max)
    assert v2_answer == expected, f"v2 {name}: {v2_answer} != {expected}"
    v2_circuits = sorted(str(c) for c in v2.circuits)
    assert v2_circuits == v3_circuits, \
        f"{name}: v2 and v3 enumerate different circuit sets"

    legacy_answer, legacy_best, legacy_median = _race(
        lambda: legacy_synthesize(spec, library))
    assert legacy_answer == expected, \
        f"legacy {name}: {legacy_answer} != {expected}"

    mem = _bytes_per_node(name, expected[0])
    v2_bpn, v2_nodes = mem["v2"]
    v3_bpn, v3_nodes = mem["v3"]

    entry = {
        "depth": expected[0],
        "num_solutions": expected[1],
        "quantum_cost_min": expected[2],
        "quantum_cost_max": expected[3],
        "v3_best_s": v3_best,
        "v3_median_s": v3_median,
        "v2_best_s": v2_best,
        "v2_median_s": v2_median,
        "legacy_best_s": legacy_best,
        "legacy_median_s": legacy_median,
        "speedup_best": v2_best / v3_best,
        "speedup_median": v2_median / v3_median,
        "kernel": kernel_available(),
        "v2_bytes_per_node": v2_bpn,
        "v3_bytes_per_node": v3_bpn,
        "v2_store_nodes": v2_nodes,
        "v3_store_nodes": v3_nodes,
        "mem_ratio": v2_bpn / v3_bpn,
    }
    _results[name] = entry
    # The acceptance gates of the packed-table issue.
    assert entry["mem_ratio"] >= MIN_MEM_RATIO, entry
    if kernel_available():
        assert entry["speedup_median"] >= MIN_SPEEDUP_MEDIAN, entry
    else:
        print(f"note: native kernel unavailable — {name} speedup "
              f"{entry['speedup_median']:.2f}x reported, not gated")
    return entry


def test_bdd_core_3_17():
    _run_case("3_17")


def test_bdd_core_mod5d1_s():
    _run_case("mod5d1_s")


def _export():
    if not _results:
        return
    payload = {
        "bench": "bdd_core",
        "reps": _reps(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "kernel": kernel_available(),
        # A single-process race by design; recorded so the perf
        # trajectory stays comparable with the parallel benches.
        "workers": 1,
        "cpu_count": os.cpu_count() or 1,
        "calibration_s": machine_calibration(),
        "peak_rss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        * 1024,
        "cases": _results,
    }
    path = _json_path()
    if path:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    append_history("bdd_core", payload)
    header = (f"{'BENCH':10s} {'D':>2s} {'#SOL':>4s} {'QC':>7s} "
              f"{'v2 best':>9s} {'v3 best':>9s} {'speedup':>8s} "
              f"{'v2 B/n':>7s} {'v3 B/n':>7s} {'mem':>6s}")
    rows = []
    for name, e in _results.items():
        qc = f"{e['quantum_cost_min']}-{e['quantum_cost_max']}"
        rows.append(f"{name:10s} {e['depth']:2d} {e['num_solutions']:4d} "
                    f"{qc:>7s} {e['v2_best_s']:8.4f}s "
                    f"{e['v3_best_s']:8.4f}s {e['speedup_best']:7.2f}x "
                    f"{e['v2_bytes_per_node']:7.1f} "
                    f"{e['v3_bytes_per_node']:7.1f} "
                    f"{e['mem_ratio']:5.1f}x")
    kernel = "native kernel" if kernel_available() else "pure Python (no cc)"
    print_table("BDD CORE — packed-table v3 vs frozen v2 manager "
                f"(best of {_reps()}, identical answers asserted, {kernel})",
                header, rows,
                "Same process, heap frozen per rep; see module docstring.")


def teardown_module(module):
    _export()


if __name__ == "__main__":
    for case in CASES:
        entry = _run_case(case)
        print(f"{case}: v3 {entry['v3_best_s']:.4f}s "
              f"v2 {entry['v2_best_s']:.4f}s "
              f"-> {entry['speedup_best']:.2f}x, "
              f"{entry['v3_bytes_per_node']:.1f} vs "
              f"{entry['v2_bytes_per_node']:.1f} B/node "
              f"({entry['mem_ratio']:.1f}x)")
    _export()
