"""BDD core v2 vs the frozen pre-PR manager (``_legacy_bdd.py``).

Races full ``synthesize()`` runs — cascade construction, the per-depth
decision, and solution enumeration — of the v2 ROBDD core against the
vendored seed core on the two instances the issue pins: 3_17 and the
mod5d1_s stand-in.  Correctness is a hard assertion, not a report: both
cores must return the exact depth / #SOL / quantum-cost range recorded
in EXPERIMENTS.md, so a speedup can never be bought with a wrong answer.

Methodology (what the numbers mean):

* Best-of-N wall clock (``REPRO_BENCH_REPS``, default 7).  Best-of is
  the right statistic for a single-threaded CPU-bound race: every source
  of variance (scheduler, frequency scaling, collector) only ever adds
  time.  The median is recorded too.
* ``gc.collect(); gc.freeze()`` before *each* timed rep.  The BDD
  engines allocate containers fast enough to trigger full-heap gen-2
  scans, so garbage left by whoever ran earlier in the process would
  otherwise bill its collection cost to whichever core runs second.
* Both cores run in the same process, same interpreter state, strictly
  alternating is unnecessary: freezing per-rep isolates them.

Exports ``BENCH_bdd_core.json`` (honoring ``REPRO_TRACE_DIR`` /
``REPRO_TRACE=0`` like the table benches) so future PRs have a perf
trajectory for the hottest loop in the repo.

Run:  cd benchmarks && PYTHONPATH=../src python -m pytest bench_bdd_core.py -q -s
 or:  PYTHONPATH=src python benchmarks/bench_bdd_core.py
"""

import gc
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _legacy_bdd import legacy_synthesize
from _tables import append_history, machine_calibration, print_table
from repro.core.library import GateLibrary
from repro.functions import get_spec
from repro.synth import synthesize

#: name -> pinned (depth, #SOL, qc_min, qc_max); the EXPERIMENTS.md
#: values both cores must reproduce exactly.
CASES = {
    "3_17": (6, 7, 14, 14),
    "mod5d1_s": (6, 5, 34, 34),
}

_results = {}


def _reps():
    return max(1, int(os.environ.get("REPRO_BENCH_REPS", "7")))


def _json_path():
    if os.environ.get("REPRO_TRACE") == "0":
        return None
    directory = os.environ.get("REPRO_TRACE_DIR", ".")
    return os.path.join(directory, "BENCH_bdd_core.json")


def _race(fn):
    """Best-of-N wall clock with a frozen heap per rep."""
    times = []
    result = None
    for _ in range(_reps()):
        gc.collect()
        gc.freeze()
        try:
            start = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - start)
        finally:
            gc.unfreeze()
    times.sort()
    return result, times[0], times[len(times) // 2]


def _run_case(name):
    expected = CASES[name]
    spec = get_spec(name)
    library = GateLibrary.mct(spec.n_lines)

    v2, v2_best, v2_median = _race(
        lambda: synthesize(spec, kinds=("mct",), engine="bdd"))
    v2_answer = (v2.depth, v2.num_solutions,
                 v2.quantum_cost_min, v2.quantum_cost_max)
    assert v2_answer == expected, f"v2 {name}: {v2_answer} != {expected}"

    legacy_answer, legacy_best, legacy_median = _race(
        lambda: legacy_synthesize(spec, library))
    assert legacy_answer == expected, \
        f"legacy {name}: {legacy_answer} != {expected}"

    entry = {
        "depth": expected[0],
        "num_solutions": expected[1],
        "quantum_cost_min": expected[2],
        "quantum_cost_max": expected[3],
        "v2_best_s": v2_best,
        "v2_median_s": v2_median,
        "legacy_best_s": legacy_best,
        "legacy_median_s": legacy_median,
        "speedup_best": legacy_best / v2_best,
        "speedup_median": legacy_median / v2_median,
    }
    _results[name] = entry
    # The v2 core must never lose the race it was rewritten to win.
    assert entry["speedup_best"] > 1.0, entry
    return entry


def test_bdd_core_3_17():
    _run_case("3_17")


def test_bdd_core_mod5d1_s():
    _run_case("mod5d1_s")


def _export():
    if not _results:
        return
    payload = {
        "bench": "bdd_core",
        "reps": _reps(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        # A single-process race by design; recorded so the perf
        # trajectory stays comparable with the parallel benches.
        "workers": 1,
        "cpu_count": os.cpu_count() or 1,
        "calibration_s": machine_calibration(),
        "cases": _results,
    }
    path = _json_path()
    if path:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    append_history("bdd_core", payload)
    header = (f"{'BENCH':10s} {'D':>2s} {'#SOL':>4s} {'QC':>7s} "
              f"{'legacy best':>12s} {'v2 best':>9s} {'speedup':>8s}")
    rows = []
    for name, e in _results.items():
        qc = f"{e['quantum_cost_min']}-{e['quantum_cost_max']}"
        rows.append(f"{name:10s} {e['depth']:2d} {e['num_solutions']:4d} "
                    f"{qc:>7s} {e['legacy_best_s']:11.4f}s "
                    f"{e['v2_best_s']:8.4f}s {e['speedup_best']:7.2f}x")
    print_table("BDD CORE — v2 manager vs frozen pre-PR core "
                f"(best of {_reps()}, identical answers asserted)",
                header, rows,
                "Same process, heap frozen per rep; see module docstring.")


def teardown_module(module):
    _export()


if __name__ == "__main__":
    for case in CASES:
        entry = _run_case(case)
        print(f"{case}: v2 {entry['v2_best_s']:.4f}s "
              f"legacy {entry['legacy_best_s']:.4f}s "
              f"-> {entry['speedup_best']:.2f}x")
    _export()
