"""Table 3 — synthesis with extended gate libraries.

Reproduces the paper's third experiment: the universal-gate formulation
supports richer libraries by construction, so each benchmark is
synthesized under MCT+MCF, MCT+P and MCT+MCF+P and the table reports
depth, runtime, #SOL and the quantum-cost range per library.  Expected
shape: extended libraries never increase the depth and often shrink it
(the paper's hwb4: 11 -> 8 with Peres); runtimes grow with the library
size except where a smaller depth saves whole iterations.

The (benchmark x library) cells are fanned over the crash-isolated
process pool of :func:`repro.parallel.run_suite` once per session
(``REPRO_WORKERS`` sets the pool size); each parametrized test then
asserts its cell.

Run:  pytest benchmarks/bench_table3_libraries.py --benchmark-only -s
"""

import pytest

from _tables import (PAPER_NOTES, append_history, engine_timeout,
                     machine_calibration, print_table, tier, trace_file,
                     workers)
from repro.functions import table3_entries
from repro.parallel import SynthesisTask, run_suite

LIBRARIES = [
    ("MCT+MCF", ("mct", "mcf")),
    ("MCT+P", ("mct", "peres")),
    ("MCT+MCF+P", ("mct", "mcf", "peres")),
]

_results = {}


def _sweep():
    """Run every (benchmark, library) cell through the pool, once."""
    if _results:
        return _results
    grid = [(entry, label, kinds) for entry in table3_entries(tier())
            for label, kinds in LIBRARIES]
    tasks = [SynthesisTask(spec=entry.spec(), engine="bdd", kinds=kinds,
                           time_limit=engine_timeout(),
                           label=f"{entry.name}/{label}")
             for entry, label, kinds in grid]
    suite = run_suite(tasks, workers=workers(), trace=trace_file("table3"))
    for (entry, label, kinds), report in zip(grid, suite.reports):
        if report.result is None:
            raise RuntimeError(
                f"{entry.name}/{label} failed: {report.error}")
        _results[(entry.name, kinds)] = report.result
    return _results


@pytest.mark.parametrize("label,kinds", LIBRARIES, ids=[l for l, _ in LIBRARIES])
@pytest.mark.parametrize("entry", table3_entries(tier()), ids=lambda e: e.name)
def test_table3_extended_library(entry, label, kinds):
    result = _sweep()[(entry.name, kinds)]
    if result.realized:
        spec = entry.spec()
        for circuit in result.circuits[:100]:
            assert spec.matches_circuit(circuit)


def teardown_module(module):
    segments = "".join(f" | {label:>26s}" for label, _ in LIBRARIES)
    header = f"{'BENCH':12s}{segments}"
    sub = f"{'':12s}" + " | ".join(f"{'D':>3s} {'TIME':>8s} {'#SOL':>6s} {'QC':>6s}"
                                   for _ in LIBRARIES)
    rows = []
    for entry in table3_entries(tier()):
        cells = []
        for label, kinds in LIBRARIES:
            result = _results.get((entry.name, kinds))
            if result is None:
                cells.append(f"{'(skip)':>26s}")
            elif not result.realized:
                cells.append(f"{'-':>3s} >{engine_timeout():6.0f}s "
                             f"{'-':>6s} {'-':>6s}")
            else:
                qc = (f"{result.quantum_cost_min}"
                      if result.quantum_cost_min == result.quantum_cost_max
                      else f"{result.quantum_cost_min}-{result.quantum_cost_max}")
                cells.append(f"{result.depth:3d} {result.runtime:7.2f}s "
                             f"{result.num_solutions:6d} {qc:>6s}")
        rows.append(f"{entry.name:12s} | " + " | ".join(cells))
    print_table(f"TABLE 3 — extended gate libraries ({tier()} tier)",
                header + "\n" + sub, rows, PAPER_NOTES["table3"])
    append_history("table3", {
        "tier": tier(),
        "calibration_s": machine_calibration(),
        "cells": {f"{name}.{'+'.join(kinds)}":
                  {"runtime_s": result.runtime, "depth": result.depth,
                   "qc_min": result.quantum_cost_min}
                  for (name, kinds), result in _results.items()},
    })
