"""Table 1 — runtime comparison of all four synthesis engines.

Reproduces the paper's central experiment: for every benchmark, the
minimal MCT depth and the runtime of

* SAT SOLVER  — per-truth-table-row encoding + CDCL (MiniSat stand-in),
* SWORD       — specialized word-level search (SWORD stand-in),
* QBF SOLVER  — polynomial QCNF + expansion solving (skizzo stand-in),
* BDDs        — BDD-based quantified synthesis (the contribution),

plus the improvement factors IMPR_SAT and IMPR_SW of the two QBF-based
engines, exactly as in the paper's columns.  Expected shape: every
engine agrees on D; SAT is slowest and times out first; SWORD beats the
QBF-solver engine; the BDD engine wins on every non-trivial function.

Each benchmark's four engine cells run concurrently through the
crash-isolated pool of :func:`repro.parallel.run_suite` (pool size:
``REPRO_WORKERS`` or min(4, CPUs)); one run record per cell is still
appended to ``BENCH_table1.jsonl``, now carrying the
``workers``/``cpu_count``/``worker_id`` provenance fields.

Run:  pytest benchmarks/bench_table1_engines.py --benchmark-only -s
      REPRO_FULL=1 REPRO_TIMEOUT=600 pytest ... (full tier)
"""

import pytest

from _tables import (
    PAPER_NOTES,
    PAPER_TABLE1,
    append_history,
    engine_timeout,
    machine_calibration,
    format_time,
    print_table,
    tier,
    trace_file,
    workers,
)
from repro.functions import table1_entries
from repro.parallel import SynthesisTask, run_suite

ENGINES = ("sat", "sword", "qbf", "bdd")

_results = {}


def _run_benchmark(entry):
    """All four engine cells of one table row, fanned over the pool."""
    tasks = [SynthesisTask(spec=entry.spec(), engine=engine, kinds=("mct",),
                           time_limit=engine_timeout(), label=engine)
             for engine in ENGINES]
    suite = run_suite(tasks, workers=min(workers(), len(tasks)),
                      trace=trace_file("table1"))
    for engine, report in zip(ENGINES, suite.reports):
        if report.result is None:
            raise RuntimeError(f"{entry.name}/{engine} failed: {report.error}")
        _results[(entry.name, engine)] = report.result
    return suite


@pytest.mark.parametrize("entry", table1_entries(tier()), ids=lambda e: e.name)
def test_table1_engine_runtime(benchmark, entry):
    suite = benchmark.pedantic(_run_benchmark, args=(entry,),
                               rounds=1, iterations=1)
    spec = entry.spec()
    realized = [r.result for r in suite.reports if r.result.realized]
    for result in realized:
        assert all(spec.matches_circuit(c) for c in result.circuits)
    # Every engine that finished must agree on the minimal depth.
    depths = {r.depth for r in realized}
    assert len(depths) <= 1, f"{entry.name}: engines disagree: {depths}"


def teardown_module(module):
    """Print the assembled Table 1 after all cells have run."""
    names = [e.name for e in table1_entries(tier())]
    header = (f"{'BENCH':12s} {'D':>3s} {'paperD':>6s} "
              f"{'SAT':>10s} {'SWORD':>10s} {'QBF':>10s} {'BDD':>10s} "
              f"{'IMPR_SAT':>9s} {'IMPR_SW':>8s}")
    rows = []
    for name in names:
        cells = {}
        depth = None
        for engine in ENGINES:
            result = _results.get((name, engine))
            if result is None:
                cells[engine] = "   (skip)"
                continue
            cells[engine] = format_time(result.runtime,
                                        timed_out=not result.realized)
            if result.realized:
                depth = result.depth
        paper_depth = PAPER_TABLE1.get(name, (None, None))[0]
        bdd = _results.get((name, "bdd"))
        sat = _results.get((name, "sat"))
        sword = _results.get((name, "sword"))

        def ratio(base, target):
            if (base is None or target is None or not target.realized
                    or target.runtime == 0):
                return "-"
            top = base.runtime if base.realized else engine_timeout()
            prefix = "" if base.realized else ">"
            return f"{prefix}{top / target.runtime:.1f}x"

        rows.append(f"{name:12s} {depth if depth is not None else '?':>3} "
                    f"{paper_depth if paper_depth is not None else '-':>6} "
                    f"{cells.get('sat', ''):>10s} {cells.get('sword', ''):>10s} "
                    f"{cells.get('qbf', ''):>10s} {cells.get('bdd', ''):>10s} "
                    f"{ratio(sat, bdd):>9s} {ratio(sword, bdd):>8s}")
    print_table(f"TABLE 1 — engine comparison ({tier()} tier, "
                f"timeout {engine_timeout():.0f}s)",
                header, rows, PAPER_NOTES["table1"])
    append_history("table1", {
        "tier": tier(),
        "timeout_s": engine_timeout(),
        "calibration_s": machine_calibration(),
        "cells": {f"{name}.{engine}": {"runtime_s": result.runtime,
                                       "depth": result.depth}
                  for (name, engine), result in _results.items()},
    })
