"""Fleet sharding: two worker hosts vs a serial suite — identity-pinned.

The distributed claim is not "faster on this container" (the dev box
has one CPU and both hosts share it) but **equivalence**: sharding a
suite across hosts through the filesystem work queue, then collecting
results and merging the per-host stores, must reproduce a serial
``run_suite`` byte for byte (``docs/fleet.md``).  Before any wall-clock
number is reported, the benchmark asserts:

* every submitted task completed — nothing missing, nothing failed;
* the collected fleet trace is **canonically byte-identical** to the
  serial suite trace, task for task;
* the merged store holds exactly the serial store's key set with
  **canonically identical entries** per key, with zero merge
  conflicts;
* a second merge is a no-op (idempotence — the re-runnable sync-back).

Exports ``BENCH_fleet.json`` (honoring ``REPRO_TRACE_DIR`` /
``REPRO_TRACE=0``).

Run:  cd benchmarks && PYTHONPATH=../src python -m pytest bench_fleet.py -q -s
 or:  PYTHONPATH=src python benchmarks/bench_fleet.py
"""

import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _tables import append_history, machine_calibration, print_table
from repro.fleet import FleetQueue, collect_results
from repro.functions import get_spec
from repro.obs.runrecord import canonical_record, read_records
from repro.parallel import run_suite
from repro.parallel.tasks import SynthesisTask
from repro.store import SynthesisStore, canonical_entry_bytes, merge_stores

#: Table 1 smoke set plus the named-gate specs: enough tasks that two
#: hosts genuinely interleave claims, fast enough for CI.
SMOKE_SET = ("3_17", "fredkin", "peres", "toffoli",
             "mod5d1_s", "decod24-v0")

HOSTS = ("alpha", "beta")

LEASE_TIMEOUT = 30.0

_payload = {}


def _json_path():
    if os.environ.get("REPRO_TRACE") == "0":
        return None
    directory = os.environ.get("REPRO_TRACE_DIR", ".")
    return os.path.join(directory, "BENCH_fleet.json")


def _tasks():
    return [SynthesisTask(spec=get_spec(name), engine="bdd", kinds=("mct",))
            for name in SMOKE_SET]


def _canonical(record):
    return json.dumps(canonical_record(record), sort_keys=True)


def _spawn_worker(queue_root, host):
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ,
               PYTHONPATH=src + os.pathsep + os.environ.get("PYTHONPATH", ""))
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "work",
         "--queue", queue_root, "--host", host, "--workers", "1",
         "--lease-timeout", str(int(LEASE_TIMEOUT)), "--quiet"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)


def _store_snapshot(root):
    store = SynthesisStore(root)
    return {key: canonical_entry_bytes(store.get(key))
            for key, _path, _mtime, _size in store._object_files()}


def test_two_host_fleet_matches_serial_suite_byte_for_byte():
    scratch = tempfile.mkdtemp(prefix="bench-fleet-")
    try:
        queue_root = os.path.join(scratch, "queue")
        serial_store = os.path.join(scratch, "serial-store")
        merged_store = os.path.join(scratch, "merged-store")
        serial_trace = os.path.join(scratch, "serial.jsonl")
        fleet_trace = os.path.join(scratch, "fleet.jsonl")

        start = time.perf_counter()
        serial = run_suite(_tasks(), workers=1, trace=serial_trace,
                           store=serial_store)
        serial_s = time.perf_counter() - start
        assert all(report.ok for report in serial.reports)

        queue = FleetQueue(queue_root, lease_timeout=LEASE_TIMEOUT)
        for task in _tasks():
            queue.submit(task)
        start = time.perf_counter()
        workers = [_spawn_worker(queue_root, host) for host in HOSTS]
        for proc in workers:
            _out, err = proc.communicate(timeout=600)
            assert proc.returncode == 0, \
                f"fleet worker failed: {err.decode(errors='replace')}"
        fleet_s = time.perf_counter() - start

        outcome = collect_results(queue_root, trace=fleet_trace)
        assert outcome["missing"] == [], f"unfinished: {outcome['missing']}"
        assert outcome["failed"] == [], f"failed: {outcome['failed']}"
        assert len(outcome["results"]) == len(SMOKE_SET)
        hosts = sorted({result["host"] for result in outcome["results"]})
        assert set(hosts) <= set(HOSTS)

        # Claim 1: the collected trace is canonically serial-identical.
        fleet_records = read_records(fleet_trace)
        serial_records = read_records(serial_trace)
        assert len(fleet_records) == len(serial_records) == len(SMOKE_SET)
        for name, fleet_rec, serial_rec in zip(SMOKE_SET, fleet_records,
                                               serial_records):
            assert _canonical(fleet_rec) == _canonical(serial_rec), \
                f"{name}: fleet record diverges from serial"

        # Claim 2: the merged store is the serial store, canonically.
        counters = merge_stores(merged_store, queue.host_store_roots())
        assert counters["conflicts"] == 0
        merged = _store_snapshot(merged_store)
        baseline = _store_snapshot(serial_store)
        assert set(merged) == set(baseline), \
            "merged store key set diverges from the serial store"
        for key in baseline:
            assert merged[key] == baseline[key], \
                f"store entry {key} diverges after merge"

        # Claim 3: the sync-back is idempotent.
        again = merge_stores(merged_store, queue.host_store_roots())
        assert again["objects"] == 0
        assert _store_snapshot(merged_store) == merged

        per_host = {host: sum(1 for result in outcome["results"]
                              if result["host"] == host) for host in hosts}
        _payload["fleet"] = {
            "benchmarks": list(SMOKE_SET), "hosts": list(HOSTS),
            "tasks": len(SMOKE_SET), "per_host_completions": per_host,
            "serial_s": serial_s, "fleet_s": fleet_s,
            "merged_objects": counters["objects"],
            "merge_duplicates": counters["duplicates"],
            "merge_bounds": counters["bounds"],
            "trace_identical": True, "store_identical": True,
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _export():
    if not _payload:
        return
    _payload.update({
        "bench": "fleet",
        "lease_timeout_s": LEASE_TIMEOUT,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "calibration_s": machine_calibration(),
    })
    path = _json_path()
    if path:
        with open(path, "w") as handle:
            json.dump(_payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    append_history("fleet", _payload)
    fleet = _payload.get("fleet")
    if fleet:
        shares = ", ".join(f"{host}={count}" for host, count
                           in sorted(fleet["per_host_completions"].items()))
        rows = [
            f"{'serial suite':22s} {fleet['serial_s']:8.3f}s "
            f"{len(SMOKE_SET):3d} tasks",
            f"{'2-host fleet':22s} {fleet['fleet_s']:8.3f}s "
            f"{len(SMOKE_SET):3d} tasks  ({shares})",
            f"{'merged store':22s} {fleet['merged_objects']:3d} objects, "
            f"{fleet['merge_duplicates']} duplicates, "
            f"{fleet['merge_bounds']} bounds",
        ]
        header = f"{'RUN':22s} {'WALL':>9s}"
        print_table("FLEET SHARDING — serial identity asserted, then timing",
                    header, rows,
                    "Fleet trace and merged store are canonically "
                    "byte-identical to the serial suite; wall clocks share "
                    f"{os.cpu_count()} CPU(s), so speed is not the claim "
                    "here — equivalence is.")


def teardown_module(module):
    _export()


if __name__ == "__main__":
    test_two_host_fleet_matches_serial_suite_byte_for_byte()
    _export()
