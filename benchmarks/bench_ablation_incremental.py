"""Ablation A3 — incremental F_d construction vs per-depth rebuild.

Section 5 notes that "the incremental nature of F_d is exploited during
the construction": F_d = U_G(F_{d-1}, Y_d) reuses the previous cascade
BDD instead of rebuilding d stages from scratch at every iteration of
the Figure-1 loop.  This bench runs the full iterative synthesis both
ways.  Expected shape: the monolithic variant pays Theta(d) stage builds
per iteration (Theta(D^2) total) and loses, increasingly so with depth.

Run:  pytest benchmarks/bench_ablation_incremental.py --benchmark-only -s
"""

import pytest

from _tables import print_table
from repro.functions import get_spec
from repro.synth import synthesize

CASES = ["graycode4", "3_17", "mod5mils", "mod5d1_s"]

_results = {}


def _run(name, incremental):
    result = synthesize(get_spec(name), engine="bdd",
                        incremental=incremental, time_limit=300)
    _results[(name, incremental)] = result
    return result


@pytest.mark.parametrize("incremental", [True, False],
                         ids=["incremental", "monolithic"])
@pytest.mark.parametrize("name", CASES)
def test_incremental(benchmark, name, incremental):
    result = benchmark.pedantic(_run, args=(name, incremental),
                                rounds=1, iterations=1)
    assert result.realized


def teardown_module(module):
    header = (f"{'BENCH':12s} {'D':>3s} {'incremental':>12s} "
              f"{'monolithic':>12s} {'speedup':>8s}")
    rows = []
    for name in CASES:
        inc = _results.get((name, True))
        mono = _results.get((name, False))
        if inc is None or mono is None:
            continue
        speedup = mono.runtime / inc.runtime if inc.runtime else float("inf")
        rows.append(f"{name:12s} {inc.depth:3d} {inc.runtime:11.2f}s "
                    f"{mono.runtime:11.2f}s {speedup:7.2f}x")
        assert inc.depth == mono.depth
        assert inc.num_solutions == mono.num_solutions
    print_table("ABLATION A3 — incremental vs monolithic F_d construction",
                header, rows,
                "Both variants must agree on D and #SOL.")
