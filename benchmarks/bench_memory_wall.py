"""Bounded 4_49 memory-wall tier: depths reached within a fixed budget.

The full 4_49 deepening run is the instance where the v2 core hit the
paper's memory wall — dict-backed node tables exhaust RAM while the
answer is still depths away.  This bench reproduces the wall at a
deliberately small, CI-safe scale: each core deepens 4_49 with
between-depth compaction *off* (the store only ever grows, so its size
is the honest footprint of everything the run interned) and stops at
the first depth whose finished store exceeds a fixed byte budget.
The depth reached within the budget is the figure of merit.

Three contenders, one budget (4 MiB):

* ``v2``      — the frozen dict-table core (vendored ``_v2_bdd``),
                footprint measured by the ``sys.getsizeof`` walk.
* ``v3``      — the packed-table core, default options.
* ``v3+gc``   — packed tables with checkpoint GC
                (``gc_threshold=50000``), which reclaims each depth's
                dead frontier so freed slots are reused instead of
                growing the columns.

Hard assertions, not reports: every depth any core decides must be
UNSAT (4_49 needs more depth than this tier allows — a core "winning"
by misjudging a depth would be caught), v3 must reach *strictly* more
depths than v2 in the same budget, and GC must never reach fewer
depths than plain v3.  On the dev container the tier lands at
v2=4, v3=7, v3+gc=8 — the per-node packing buys three depths and
checkpoint GC a fourth (see ``docs/performance.md``).

The whole tier runs in a few seconds; the 1800 s full-instance run
stays out of CI by construction.

Run:  cd benchmarks && PYTHONPATH=../src python -m pytest bench_memory_wall.py -q -s
 or:  PYTHONPATH=src python benchmarks/bench_memory_wall.py
"""

import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import _v2_bdd
from _tables import append_history, machine_calibration, print_table
import repro.synth.bdd_engine as bdd_engine
from repro.bdd.tables import kernel_available
from repro.core.library import GateLibrary
from repro.functions import get_spec

INSTANCE = "4_49"
BUDGET_BYTES = 4 * 1024 * 1024
#: Deepest depth the tier will attempt; every depth up to here is UNSAT
#: for 4_49, and depth 9's store blows the budget for every contender,
#: so the cap is never the binding constraint — it just bounds runtime.
MAX_DEPTH = 9
PER_DEPTH_TIME_LIMIT = 120.0

CONTENDERS = {
    "v2": {},
    "v3": {},
    "v3+gc": {"gc_threshold": 50000},
}

_results = {}


def _store_bytes(manager):
    if hasattr(manager, "node_store_bytes"):
        return manager.node_store_bytes()
    return _v2_bdd.node_store_bytes(manager)


def _deepen_within_budget(name, options):
    """Deepen until the finished store exceeds the budget.

    Returns ``(deepest_depth_within_budget, statuses, bytes_per_depth,
    elapsed_s)``; the byte figure recorded for a depth is the store
    footprint *after* that depth's stage build and decision.
    """
    spec = get_spec(INSTANCE)
    library = GateLibrary.mct(spec.n_lines)
    previous = bdd_engine.BddManager
    if name == "v2":
        bdd_engine.BddManager = _v2_bdd.BddManager
    try:
        engine = bdd_engine.BddSynthesisEngine(
            spec, library, compact_between_depths=False, **options)
        start = time.perf_counter()
        reached = -1
        statuses = []
        footprints = []
        for depth in range(MAX_DEPTH + 1):
            outcome = engine.decide(depth, time_limit=PER_DEPTH_TIME_LIMIT)
            statuses.append(outcome.status)
            assert outcome.status == "unsat", (
                f"{name}: 4_49 depth {depth} decided "
                f"{outcome.status}, expected unsat")
            footprint = _store_bytes(engine.manager)
            footprints.append(footprint)
            if footprint > BUDGET_BYTES:
                break
            reached = depth
        return reached, statuses, footprints, time.perf_counter() - start
    finally:
        bdd_engine.BddManager = previous


def test_memory_wall_tier():
    for name, options in CONTENDERS.items():
        reached, statuses, footprints, elapsed = \
            _deepen_within_budget(name, options)
        _results[name] = {
            "deepest_within_budget": reached,
            "statuses": statuses,
            "store_bytes_per_depth": footprints,
            "wall_s": elapsed,
        }
    # Every core must agree on every verdict it reached (all UNSAT is
    # asserted inside the loop; this pins the shared prefix lengths).
    v2, v3, v3gc = (_results[n]["deepest_within_budget"]
                    for n in ("v2", "v3", "v3+gc"))
    assert v3 > v2, (
        f"packed tables must break the wall: v3 reached {v3}, v2 {v2}")
    assert v3gc >= v3, (
        f"checkpoint GC must never lose depths: {v3gc} < {v3}")


def _export():
    if not _results:
        return
    payload = {
        "bench": "memory_wall",
        "instance": INSTANCE,
        "budget_bytes": BUDGET_BYTES,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "kernel": kernel_available(),
        "workers": 1,
        "cpu_count": os.cpu_count() or 1,
        "calibration_s": machine_calibration(),
        "contenders": _results,
    }
    if os.environ.get("REPRO_TRACE") != "0":
        directory = os.environ.get("REPRO_TRACE_DIR", ".")
        path = os.path.join(directory, "BENCH_memory_wall.json")
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    append_history("memory_wall", payload)
    header = (f"{'CORE':8s} {'depth':>5s} {'store @ depth':>13s} "
              f"{'next depth':>11s} {'wall':>8s}")
    rows = []
    for name, entry in _results.items():
        reached = entry["deepest_within_budget"]
        footprints = entry["store_bytes_per_depth"]
        at = footprints[reached] / 1e6 if reached >= 0 else 0.0
        over = (f"{footprints[reached + 1] / 1e6:9.2f} MB"
                if reached + 1 < len(footprints) else "      (cap)")
        rows.append(f"{name:8s} {reached:5d} {at:10.2f} MB "
                    f"{over:>11s} {entry['wall_s']:7.2f}s")
    print_table(
        f"MEMORY WALL — 4_49 depths reached in a "
        f"{BUDGET_BYTES // (1024 * 1024)} MiB node-store budget",
        header, rows,
        "Between-depth compaction off; store measured after each depth; "
        "all decided depths UNSAT-verified.")


def teardown_module(module):
    _export()


if __name__ == "__main__":
    test_memory_wall_tier()
    for name, entry in _results.items():
        print(f"{name}: depth {entry['deepest_within_budget']} "
              f"in {entry['wall_s']:.2f}s")
    _export()
