"""Ablation A2 — QBF solving strategy: QDPLL search vs universal expansion.

The paper's QBF engine used skizzo, a solver built on symbolic
skolemization (an expansion-flavoured technique).  This bench compares
the two QBF decision procedures implemented here on the same synthesis
instances: prefix-order QDPLL search (no learning) against universal
expansion followed by one CDCL call.  Expected shape: expansion wins by
orders of magnitude — search without learning re-explores the select
space per universal branch, while expansion delegates everything to
conflict-driven SAT (this also explains why the paper's QBF engine,
though polynomial to *encode*, cannot keep up with the BDD engine).

Run:  pytest benchmarks/bench_ablation_qbf_solvers.py --benchmark-only -s
"""

import pytest

from _tables import print_table
from repro.core.library import GateLibrary
from repro.functions import get_spec
from repro.synth.qbf_engine import QbfSolverEngine

#: (benchmark, depth) — small decisions both solvers can finish
CASES = [("graycode4", 1), ("graycode4", 2), ("3_17", 2), ("3_17", 3)]

_results = {}


def _run(name, depth, solver):
    spec = get_spec(name)
    engine = QbfSolverEngine(spec, GateLibrary.mct(spec.n_lines),
                             solver=solver)
    outcome = engine.decide(depth, time_limit=120)
    _results[(name, depth, solver)] = outcome
    return outcome


@pytest.mark.parametrize("solver", ["qdpll", "expansion"])
@pytest.mark.parametrize("name,depth", CASES,
                         ids=[f"{n}-d{d}" for n, d in CASES])
def test_qbf_solver(benchmark, name, depth, solver):
    outcome = benchmark.pedantic(_run, args=(name, depth, solver),
                                 rounds=1, iterations=1)
    assert outcome.status in ("sat", "unsat", "unknown")


def teardown_module(module):
    header = f"{'BENCH':12s} {'depth':>5s} {'QDPLL':>10s} {'expansion':>10s}"
    rows = []
    for name, depth in CASES:
        qdpll = _results.get((name, depth, "qdpll"))
        expansion = _results.get((name, depth, "expansion"))
        cells = []
        for outcome in (qdpll, expansion):
            if outcome is None:
                cells.append("(skip)")
            else:
                cells.append(outcome.status)
        rows.append(f"{name:12s} {depth:5d} {cells[0]:>10s} {cells[1]:>10s}")
    print_table("ABLATION A2 — QDPLL search vs universal expansion",
                header, rows,
                "Verdicts must agree; see pytest-benchmark timings for "
                "the orders-of-magnitude runtime gap.")
