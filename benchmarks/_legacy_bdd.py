"""Frozen pre-v2 BDD core, vendored as the perf baseline.

``bench_bdd_core.py`` measures the v2 manager (complement edges,
op-tagged apply cache, bitmask quantification, mux-tree universal gate)
against the manager this repository shipped before the rewrite.  The
old implementation is copied here verbatim — importing it from git
history would make the benchmark depend on the checkout state — along
with the minterm-per-code universal gate stage and a minimal synthesis
loop replicating ``BddSynthesisEngine.decide`` closely enough to
compare end-to-end wall clock, minimal depths, ``#SOL`` counts and
quantum-cost ranges.

Do not "fix" or optimize this module: its whole value is staying
identical to the seed so the speedup trajectory in
``BENCH_bdd_core.json`` keeps meaning something.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

FALSE = 0
TRUE = 1


class LegacyBddManager:
    """The seed ROBDD manager: no complement edges, plain (f,g,h) keys."""

    def __init__(self, num_vars: int = 0, var_names: Optional[Sequence[str]] = None):
        # The seed raised the interpreter-wide recursion limit at import
        # time; the vendored copy does it at construction to keep the
        # module import side-effect free.
        sys.setrecursionlimit(max(sys.getrecursionlimit(), 100_000))
        self._var: List[int] = [-1, -1]
        self._lo: List[int] = [FALSE, FALSE]
        self._hi: List[int] = [FALSE, FALSE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._quant_cache: Dict[Tuple[int, int, Tuple[int, ...]], int] = {}
        self._names: List[str] = []
        self.num_vars = 0
        self.ite_cache_hits = 0
        self._ite_dropped = 0
        self.quant_calls = 0
        self.quant_cache_hits = 0
        self.cache_clears = 0
        self.peak_nodes = 2
        for i in range(num_vars):
            name = var_names[i] if var_names else None
            self.add_var(name)

    def add_var(self, name: Optional[str] = None) -> int:
        index = self.num_vars
        self.num_vars += 1
        self._names.append(name if name is not None else f"v{index}")
        return index

    def var(self, index: int) -> int:
        if not 0 <= index < self.num_vars:
            raise ValueError(f"unknown variable {index}")
        return self._mk(index, FALSE, TRUE)

    def _mk(self, var: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (var, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
        return node

    def node_count(self) -> int:
        return len(self._var)

    def ite(self, f: int, g: int, h: int) -> int:
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            self.ite_cache_hits += 1
            return cached
        var, lo, hi = self._var, self._lo, self._hi
        level = var[f]
        level_g = var[g] if g > 1 else self.num_vars
        if level_g < level:
            level = level_g
        level_h = var[h] if h > 1 else self.num_vars
        if level_h < level:
            level = level_h
        if var[f] == level:
            f0, f1 = lo[f], hi[f]
        else:
            f0 = f1 = f
        if g > 1 and var[g] == level:
            g0, g1 = lo[g], hi[g]
        else:
            g0 = g1 = g
        if h > 1 and var[h] == level:
            h0, h1 = lo[h], hi[h]
        else:
            h0 = h1 = h
        result = self._mk(level,
                          self.ite(f0, g0, h0),
                          self.ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    def not_(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def xnor(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def conj(self, nodes: Iterable[int]) -> int:
        result = TRUE
        for node in nodes:
            result = self.and_(result, node)
            if result == FALSE:
                return FALSE
        return result

    def disj(self, nodes: Iterable[int]) -> int:
        result = FALSE
        for node in nodes:
            result = self.or_(result, node)
            if result == TRUE:
                return TRUE
        return result

    def forall(self, f: int, variables: Iterable[int]) -> int:
        return self._quantify(f, tuple(sorted(set(variables))), forall=True)

    def _quantify(self, f: int, variables: Tuple[int, ...], forall: bool) -> int:
        if not variables or f <= 1:
            return f
        self.quant_calls += 1
        key = (-1 if forall else -4, f, variables)
        cached = self._quant_cache.get(key)
        if cached is not None:
            self.quant_cache_hits += 1
            return cached
        level = self._var[f]
        remaining = tuple(v for v in variables if v >= level)
        if not remaining:
            result = f
        else:
            lo = self._quantify(self._lo[f], remaining, forall)
            hi = self._quantify(self._hi[f], remaining, forall)
            if level in remaining:
                result = self.and_(lo, hi) if forall else self.or_(lo, hi)
            else:
                result = self._mk(level, lo, hi)
        self._quant_cache[key] = result
        return result

    def size(self, node: int) -> int:
        seen: Set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen or current <= 1:
                seen.add(current)
                continue
            seen.add(current)
            stack.append(self._lo[current])
            stack.append(self._hi[current])
        return len(seen)

    def stats(self) -> Dict[str, int]:
        misses = self._ite_dropped + len(self._ite_cache)
        return {
            "nodes": len(self._var),
            "peak_nodes": max(self.peak_nodes, len(self._var)),
            "num_vars": self.num_vars,
            "ite_calls": self.ite_cache_hits + misses,
            "ite_cache_hits": self.ite_cache_hits,
            "ite_cache_entries": len(self._ite_cache),
            "quant_calls": self.quant_calls,
            "quant_cache_hits": self.quant_cache_hits,
            "quant_cache_entries": len(self._quant_cache),
            "cache_clears": self.cache_clears,
        }

    def compact(self, roots: Sequence[int]) -> List[int]:
        self.peak_nodes = max(self.peak_nodes, len(self._var))
        reachable: Set[int] = {FALSE, TRUE}
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in reachable:
                continue
            reachable.add(node)
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        old_ids = sorted(reachable)
        remap: Dict[int, int] = {}
        new_var: List[int] = []
        new_lo: List[int] = []
        new_hi: List[int] = []
        for new_id, old_id in enumerate(old_ids):
            remap[old_id] = new_id
            new_var.append(self._var[old_id])
            if old_id <= 1:
                new_lo.append(FALSE)
                new_hi.append(FALSE)
            else:
                new_lo.append(remap[self._lo[old_id]])
                new_hi.append(remap[self._hi[old_id]])
        self._var, self._lo, self._hi = new_var, new_lo, new_hi
        self._unique = {
            (self._var[i], self._lo[i], self._hi[i]): i
            for i in range(2, len(self._var))
        }
        self._ite_dropped += len(self._ite_cache)
        self._ite_cache.clear()
        self._quant_cache.clear()
        return [remap[r] for r in roots]

    def support(self, f: int) -> Set[int]:
        seen: Set[int] = set()
        result: Set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            result.add(self._var[node])
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return result

    def count_models(self, f: int, variables: Sequence[int]) -> int:
        var_list = sorted(set(variables))
        missing = self.support(f) - set(var_list)
        if missing:
            raise ValueError(f"variables {sorted(missing)} in support but not counted")
        position = {v: i for i, v in enumerate(var_list)}
        total = len(var_list)
        memo: Dict[int, int] = {}

        def level_of(node: int) -> int:
            return position[self._var[node]] if node > 1 else total

        def rec(node: int) -> int:
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            cached = memo.get(node)
            if cached is not None:
                return cached
            here = level_of(node)
            result = 0
            for child in (self._lo[node], self._hi[node]):
                result += rec(child) << (level_of(child) - here - 1)
            memo[node] = result
            return result

        return rec(f) << level_of(f)

    def iter_models(self, f: int, variables: Sequence[int]) -> Iterator[Dict[int, bool]]:
        var_list = sorted(set(variables))
        missing = self.support(f) - set(var_list)
        if missing:
            raise ValueError(f"variables {sorted(missing)} in support but not enumerated")

        def rec(node: int, depth: int, partial: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if node == FALSE:
                return
            if depth == len(var_list):
                yield dict(partial)
                return
            var = var_list[depth]
            if node > 1 and self._var[node] == var:
                branches = ((False, self._lo[node]), (True, self._hi[node]))
            else:
                branches = ((False, node), (True, node))
            for value, child in branches:
                partial[var] = value
                yield from rec(child, depth + 1, partial)
            del partial[var]

        yield from rec(f, 0, {})

    def from_minterms(self, variables: Sequence[int], minterms: Iterable[int]) -> int:
        var_list = list(variables)
        minterm_set = set(minterms)
        if not minterm_set:
            return FALSE
        if any(not 0 <= m < (1 << len(var_list)) for m in minterm_set):
            raise ValueError("minterm out of range")
        order = sorted(range(len(var_list)), key=lambda j: var_list[j])

        def rec(depth: int, terms: frozenset) -> int:
            if not terms:
                return FALSE
            if depth == len(order):
                return TRUE
            j = order[depth]
            lo_terms = frozenset(t for t in terms if not (t >> j) & 1)
            hi_terms = frozenset(t for t in terms if (t >> j) & 1)
            return self._mk(var_list[j],
                            rec(depth + 1, lo_terms),
                            rec(depth + 1, hi_terms))

        return rec(0, frozenset(minterm_set))


def legacy_universal_gate_stage(lines, select, library, manager):
    """The seed universal gate: one minterm conjunction per gate code."""
    n = library.n_lines
    width = library.select_bits()
    negated = [manager.not_(s) for s in select]
    deltas = [FALSE] * n
    for code, gate in enumerate(library):
        minterm = manager.conj(
            select[j] if (code >> j) & 1 else negated[j] for j in range(width)
        )

        class _Ops:
            true = TRUE

            @staticmethod
            def conj(signals):
                return manager.conj(signals)

            @staticmethod
            def xor(a, b):
                return manager.xor(a, b)

        for line, delta in gate.symbolic_deltas(lines, _Ops).items():
            contribution = manager.conj([minterm, delta])
            deltas[line] = manager.disj([deltas[line], contribution])
    return [manager.xor(lines[l], deltas[l]) for l in range(n)]


def legacy_synthesize(spec, library, max_depth: int = 16,
                      max_enumerate: int = 200_000):
    """Iterative-deepening synthesis on the frozen core.

    Mirrors the seed ``BddSynthesisEngine`` incremental loop: build the
    cascade depth by depth, form the equality BDD, universally quantify
    the inputs, and on the first satisfiable depth report
    ``(depth, num_solutions, qc_min, qc_max)``.  The per-depth
    bookkeeping the seed engine always performed — a ``stats()``
    snapshot, the ``eq_size`` gauge, and mark-and-sweep compaction of
    the live roots between depths — is reproduced too, so the baseline
    wall clock is the engine users actually ran, not an idealized inner
    loop.
    """
    from repro.core.circuit import Circuit

    n = spec.n_lines
    width = library.select_bits()
    manager = LegacyBddManager()
    x_vars = [manager.add_var(f"x{l}") for l in range(n)]
    lines = [manager.var(v) for v in x_vars]
    on_bdds = [manager.from_minterms(x_vars, spec.on_set(l)) for l in range(n)]
    dc_bdds = [manager.from_minterms(x_vars, spec.dc_set(l)) for l in range(n)]
    y_vars: List[List[int]] = []

    def compact_roots():
        nonlocal lines, on_bdds, dc_bdds
        remapped = manager.compact(lines + on_bdds + dc_bdds)
        lines = remapped[:n]
        on_bdds = remapped[n:2 * n]
        dc_bdds = remapped[2 * n:]

    for depth in range(max_depth + 1):
        manager.stats()  # per-depth metrics snapshot, as in the engine
        if depth > 0:
            block = [manager.add_var(f"y{depth - 1}_{j}") for j in range(width)]
            y_vars.append(block)
            select_nodes = [manager.var(v) for v in block]
            lines = legacy_universal_gate_stage(lines, select_nodes, library,
                                                manager)
        terms = []
        for l in range(n):
            agree = manager.xnor(lines[l], on_bdds[l])
            terms.append(manager.or_(dc_bdds[l], agree))
        equality = manager.conj(terms)
        all_select = [v for block in y_vars for v in block]
        solutions = manager.forall(equality, x_vars)
        manager.size(equality)  # the eq_size gauge
        manager.stats()
        if solutions == FALSE:
            compact_roots()
            continue
        if not all_select:
            return depth, 1, 0, 0
        count = manager.count_models(solutions, all_select)
        circuits = []
        for model in manager.iter_models(solutions, all_select):
            gates = []
            for block in y_vars:
                code = sum((1 << j) for j, v in enumerate(block) if model[v])
                if code < library.size():
                    gates.append(library[code])
            circuits.append(Circuit(n, gates))
            if len(circuits) >= max_enumerate:
                break
        costs = [c.quantum_cost() for c in circuits]
        return depth, count, min(costs), max(costs)
    raise RuntimeError(f"no realization within {max_depth} gates")
