"""Serve daemon: coalescing and store-first answering — identity-pinned.

Two claims are measured, with correctness asserted before any speed
number is reported (``docs/serving.md``):

* **request coalescing** — 8 clients submit the *same* configuration
  concurrently against a fresh daemon; exactly one synthesis runs, the
  other seven attach as followers, every reply's canonical run record
  is byte-identical to a serial ``repro synth`` of that spec, and the
  8-way wall clock stays within ``MAX_CONCURRENT_RATIO``× the
  single-request wall clock (the ISSUE's acceptance bar is 2×);
* **store-first under load** — once the daemon's store holds the
  answer, a concurrent mix of repeats and orbit variants is served
  entirely from the store: zero syntheses, every reply's circuits
  verified in the requester's own frame.

Exports ``BENCH_serve.json`` (honoring ``REPRO_TRACE_DIR`` /
``REPRO_TRACE=0``).

Run:  cd benchmarks && PYTHONPATH=../src python -m pytest bench_serve.py -q -s
 or:  PYTHONPATH=src python benchmarks/bench_serve.py
"""

import json
import os
import platform
import shutil
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _tables import append_history, machine_calibration, print_table

import repro.obs as obs
from repro.core.library import GateLibrary
from repro.core.realfmt import parse_real
from repro.core.spec import Specification
from repro.core.transform import LineTransform, OrbitTransform
from repro.functions import get_spec
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.synth import synthesize
from repro.verify import circuit_realizes

#: The coalescing workload: slow enough for 7 followers to attach while
#: the leader's run is still deepening, fast enough for CI.
COALESCE_BENCH = "decod24-v3"
COALESCE_ENGINE = "sat"

#: Store-first workload: the all-minimal-networks BDD answer for 3_17,
#: replayed into relabeled/negated/inverted frames.
STORE_BENCH = "3_17"
STORE_ENGINE = "bdd"
STORE_KINDS = "mpmct"

CLIENTS = 8

#: Acceptance ceiling: 8 concurrent identical requests must finish
#: within this factor of one request's wall clock.
MAX_CONCURRENT_RATIO = 2.0

TIME_LIMIT = 120.0

_payload = {}


def _json_path():
    if os.environ.get("REPRO_TRACE") == "0":
        return None
    directory = os.environ.get("REPRO_TRACE_DIR", ".")
    return os.path.join(directory, "BENCH_serve.json")


def _fresh_server(root, **overrides):
    obs.reset_event_bus()
    obs.default_registry().reset()
    config = ServeConfig(port=0, store=root, max_concurrency=2,
                         drain_grace=1.0, **overrides)
    thread = ServerThread(config)
    return thread, thread.start()


def _canonical(record):
    return json.dumps(obs.canonical_record(record), sort_keys=True)


def test_eight_identical_requests_cost_one_synthesis():
    spec = get_spec(COALESCE_BENCH)
    library = GateLibrary.from_kinds(spec.n_lines, ("mct",))
    serial = synthesize(spec, kinds=("mct",), engine=COALESCE_ENGINE,
                        time_limit=TIME_LIMIT)
    assert serial.realized
    expected = _canonical(obs.build_run_record(serial, library))

    request = dict(benchmark=COALESCE_BENCH, engine=COALESCE_ENGINE,
                   time_limit=TIME_LIMIT)

    # Single-request wall clock: fresh daemon, fresh store, one client.
    root = tempfile.mkdtemp(prefix="bench-serve-single-")
    thread, server = _fresh_server(root)
    try:
        start = time.perf_counter()
        with ServeClient(server.addresses[0], timeout=TIME_LIMIT) as client:
            reply = client.synth_wait(**request)
        single_s = time.perf_counter() - start
        assert reply["status"] == "realized"
        assert _canonical(reply["record"]) == expected
    finally:
        thread.shutdown()
        shutil.rmtree(root, ignore_errors=True)

    # 8 concurrent identical requests: fresh daemon again.
    root = tempfile.mkdtemp(prefix="bench-serve-coalesce-")
    thread, server = _fresh_server(root)
    try:
        address = server.addresses[0]
        replies = [None] * CLIENTS
        barrier = threading.Barrier(CLIENTS + 1)

        def submit(slot):
            with ServeClient(address, timeout=TIME_LIMIT) as client:
                barrier.wait()
                replies[slot] = client.synth_wait(**request)

        workers = [threading.Thread(target=submit, args=(slot,))
                   for slot in range(CLIENTS)]
        for worker in workers:
            worker.start()
        barrier.wait()
        start = time.perf_counter()
        for worker in workers:
            worker.join(timeout=300)
        concurrent_s = time.perf_counter() - start

        with ServeClient(address, timeout=30.0) as client:
            stats = client.stats()
    finally:
        thread.shutdown()
        shutil.rmtree(root, ignore_errors=True)

    # Correctness first: one synthesis, every reply the serial record.
    assert stats["serve"]["serve.syntheses"] == 1, \
        f"expected 1 synthesis for {CLIENTS} identical requests: " \
        f"{stats['serve']}"
    followers = stats["serve"].get("serve.coalesced_followers", 0)
    store_hits = stats["serve"].get("serve.store_hits", 0)
    assert followers + store_hits == CLIENTS - 1
    for reply in replies:
        assert reply is not None and reply["status"] == "realized"
        assert _canonical(reply["record"]) == expected, \
            "a daemon reply diverged from the serial repro synth record"

    ratio = concurrent_s / single_s if single_s else float("inf")
    assert ratio <= MAX_CONCURRENT_RATIO, \
        f"{CLIENTS} coalesced requests took {ratio:.2f}x one request " \
        f"(ceiling {MAX_CONCURRENT_RATIO}x)"
    _payload["coalesce"] = {
        "benchmark": COALESCE_BENCH, "engine": COALESCE_ENGINE,
        "clients": CLIENTS, "single_s": single_s,
        "concurrent_s": concurrent_s, "ratio": ratio,
        "syntheses": stats["serve"]["serve.syntheses"],
        "coalesced_followers": followers, "store_hits": store_hits,
    }


def test_store_first_serves_orbit_mix_with_zero_syntheses():
    base = get_spec(STORE_BENCH)
    variants = [
        OrbitTransform(LineTransform(3, (2, 0, 1))),
        OrbitTransform(LineTransform(3, (1, 2, 0), mask=0b110)),
        OrbitTransform(LineTransform.identity(3), invert=True),
        OrbitTransform(LineTransform(3, (2, 0, 1), mask=0b011), invert=True),
    ]

    def variant_spec(index):
        transform = variants[index % len(variants)]
        return Specification.from_permutation(
            transform.apply_to_table(base.permutation()),
            name=f"{STORE_BENCH}~v{index}")

    root = tempfile.mkdtemp(prefix="bench-serve-store-")
    thread, server = _fresh_server(root)
    try:
        address = server.addresses[0]
        with ServeClient(address, timeout=TIME_LIMIT) as client:
            warm = client.synth_wait(benchmark=STORE_BENCH,
                                     engine=STORE_ENGINE, kinds=STORE_KINDS)
            assert warm["status"] == "realized"

        replies = [None] * CLIENTS
        specs = [base if slot % 2 == 0 else variant_spec(slot)
                 for slot in range(CLIENTS)]
        barrier = threading.Barrier(CLIENTS + 1)

        def submit(slot):
            spec = specs[slot]
            request = (dict(benchmark=STORE_BENCH)
                       if slot % 2 == 0
                       else dict(perm=list(spec.permutation()),
                                 name=spec.name))
            with ServeClient(address, timeout=TIME_LIMIT) as client:
                barrier.wait()
                replies[slot] = client.synth_wait(
                    engine=STORE_ENGINE, kinds=STORE_KINDS, **request)

        workers = [threading.Thread(target=submit, args=(slot,))
                   for slot in range(CLIENTS)]
        for worker in workers:
            worker.start()
        barrier.wait()
        start = time.perf_counter()
        for worker in workers:
            worker.join(timeout=300)
        mixed_s = time.perf_counter() - start

        with ServeClient(address, timeout=30.0) as client:
            stats = client.stats()
    finally:
        thread.shutdown()
        shutil.rmtree(root, ignore_errors=True)

    # One synthesis total (the warm-up); the mixed phase was all store.
    assert stats["serve"]["serve.syntheses"] == 1, stats["serve"]
    assert stats["serve"]["serve.store_hits"] == CLIENTS
    for slot, reply in enumerate(replies):
        assert reply is not None and reply["served"] == "store", reply
        assert reply["circuits"], "store hit replayed no circuits"
        for text in reply["circuits"]:
            circuit, _ = parse_real(text)
            assert circuit_realizes(circuit, specs[slot]), \
                f"slot {slot}: replayed circuit wrong in its own frame"
    _payload["store_first"] = {
        "benchmark": STORE_BENCH, "engine": STORE_ENGINE,
        "kinds": STORE_KINDS, "clients": CLIENTS,
        "orbit_variants": CLIENTS // 2, "mixed_s": mixed_s,
        "per_reply_s": mixed_s / CLIENTS,
        "store_hits": stats["serve"]["serve.store_hits"],
    }


def _export():
    if not _payload:
        return
    _payload.update({
        "bench": "serve",
        "clients": CLIENTS,
        "max_concurrent_ratio": MAX_CONCURRENT_RATIO,
        "time_limit_s": TIME_LIMIT,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "calibration_s": machine_calibration(),
    })
    path = _json_path()
    if path:
        with open(path, "w") as handle:
            json.dump(_payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    append_history("serve", _payload)
    rows = []
    coalesce = _payload.get("coalesce")
    if coalesce:
        rows.append(
            f"{'coalesce ' + coalesce['benchmark']:22s} "
            f"{coalesce['single_s']:8.3f}s {coalesce['concurrent_s']:8.3f}s "
            f"{coalesce['ratio']:7.2f}x  {coalesce['syntheses']} synth")
    store_first = _payload.get("store_first")
    if store_first:
        rows.append(
            f"{'store-mix ' + store_first['benchmark']:22s} "
            f"{'-':>9s} {store_first['mixed_s']:8.3f}s "
            f"{'-':>8s}  {store_first['store_hits']} hits")
    if rows:
        header = (f"{'PHASE':22s} {'1 CLIENT':>9s} {'8 CLIENTS':>9s} "
                  f"{'RATIO':>8s}  OUTCOME")
        print_table("SERVE DAEMON — identical records asserted, then speed",
                    header, rows,
                    "Coalesce = one synthesis answers 8 equivalent clients; "
                    "store-mix = repeats + orbit variants, engines idle.")


def teardown_module(module):
    _export()


if __name__ == "__main__":
    test_eight_identical_requests_cost_one_synthesis()
    test_store_first_serves_orbit_mix_with_zero_syntheses()
    _export()
