"""Persistent store: warm/cold speedup and bound-ledger resume — identity-pinned.

Two claims are measured, with correctness asserted before any speed
number is reported (``docs/store.md``):

* **result-store hits** — the Table 1 smoke set is synthesized twice
  against one fresh store; every second-pass run must be a hit
  (``store_hit``), return *exactly* the cold answer (status, depth,
  per-depth decisions, canonical circuits gate for gate), and the warm
  pass in aggregate must run at least ``MIN_SPEEDUP``× faster;
* **bound-ledger resume** — a run interrupted by a wall-clock timeout
  banks its contiguous UNSAT prefix; the follow-up run must resume
  above the banked bound (never re-proving a refuted depth) and still
  find the identical circuits as an uncached baseline.

Exports ``BENCH_store.json`` (honoring ``REPRO_TRACE_DIR`` /
``REPRO_TRACE=0``).

Run:  cd benchmarks && PYTHONPATH=../src python -m pytest bench_store.py -q -s
 or:  PYTHONPATH=src python benchmarks/bench_store.py
"""

import json
import os
import platform
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _tables import append_history, machine_calibration, print_table
from repro.functions import get_spec
from repro.store import SynthesisStore, derive_store_key
from repro.core.library import GateLibrary
from repro.synth import synthesize

#: Table 1 smoke set: fast enough for CI, slow enough to measure.
SMOKE_SET = ("3_17", "mod5d1_s", "mod5d2_s", "mod5mils",
             "decod24-v0", "decod24-v3")

#: One stateless engine and the BDD engine: hits must replay both a
#: single-circuit result and an all-minimal-networks result.
ENGINES = ("bdd", "sat")

#: Acceptance floor for the aggregate warm-over-cold speedup.
MIN_SPEEDUP = 10.0

#: Benchmark used for the timeout-resume demonstration (the slowest of
#: the smoke set under the SAT engine, so there is budget to cut).
RESUME_BENCH = "3_17"

TIME_LIMIT = 120.0

_payload = {}


def _json_path():
    if os.environ.get("REPRO_TRACE") == "0":
        return None
    directory = os.environ.get("REPRO_TRACE_DIR", ".")
    return os.path.join(directory, "BENCH_store.json")


def _assert_identical(label, warm, cold):
    """A hit (or resume) must reproduce the uncached answer, exactly."""
    assert warm.status == cold.status, \
        f"{label}: warm {warm.status} != cold {cold.status}"
    assert warm.depth == cold.depth, \
        f"{label}: warm depth {warm.depth} != cold {cold.depth}"
    assert warm.num_solutions == cold.num_solutions, \
        f"{label}: solution counts diverge"
    assert (warm.quantum_cost_min, warm.quantum_cost_max) \
        == (cold.quantum_cost_min, cold.quantum_cost_max), \
        f"{label}: quantum-cost range diverges"
    assert [c.to_string() for c in warm.circuits] \
        == [c.to_string() for c in cold.circuits], \
        f"{label}: canonical circuits diverge"


def test_warm_pass_is_all_hits_and_an_order_of_magnitude_faster():
    root = tempfile.mkdtemp(prefix="bench-store-")
    try:
        cases = {}
        cold_total = warm_total = 0.0
        for engine in ENGINES:
            for name in SMOKE_SET:
                spec = get_spec(name)
                start = time.perf_counter()
                cold = synthesize(spec, kinds=("mct",), engine=engine,
                                  time_limit=TIME_LIMIT, store=root)
                cold_s = time.perf_counter() - start
                start = time.perf_counter()
                warm = synthesize(spec, kinds=("mct",), engine=engine,
                                  time_limit=TIME_LIMIT, store=root)
                warm_s = time.perf_counter() - start
                label = f"{name}/{engine}"
                assert not cold.store_hit, f"{label}: cold run hit the store"
                assert warm.store_hit, f"{label}: warm run missed the store"
                _assert_identical(label, warm, cold)
                cold_total += cold_s
                warm_total += warm_s
                cases[label] = {
                    "status": warm.status, "depth": warm.depth,
                    "cold_s": cold_s, "warm_s": warm_s,
                    "speedup": cold_s / warm_s if warm_s else float("inf"),
                }
        aggregate = cold_total / warm_total if warm_total else float("inf")
        assert aggregate >= MIN_SPEEDUP, \
            f"aggregate warm speedup {aggregate:.1f}x below the " \
            f"{MIN_SPEEDUP:.0f}x floor"
        stats = SynthesisStore(root).stats()
        _payload["hits"] = {
            "benchmarks": list(SMOKE_SET), "engines": list(ENGINES),
            "cases": cases, "cold_total_s": cold_total,
            "warm_total_s": warm_total, "aggregate_speedup": aggregate,
            "store_results": stats["results"],
            "store_result_bytes": stats["result_bytes"],
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_timeout_interrupted_run_resumes_from_banked_bound():
    spec = get_spec(RESUME_BENCH)
    library = GateLibrary.from_kinds(spec.n_lines, ("mct",))
    baseline = synthesize(spec, kinds=("mct",), engine="sat",
                          time_limit=TIME_LIMIT)
    assert baseline.realized

    root = tempfile.mkdtemp(prefix="bench-store-resume-")
    try:
        # Shrink the budget until the run is genuinely interrupted: the
        # halving terminates because some budget is too small to finish
        # in, and MIN_DEPTH_BUDGET stops the slide at the bottom.
        budget = baseline.runtime / 2
        interrupted = None
        for _ in range(24):
            store = SynthesisStore(root)
            store.clear()
            attempt = synthesize(spec, kinds=("mct",), engine="sat",
                                 time_limit=budget, store=root)
            if attempt.status == "timeout":
                interrupted = attempt
                break
            budget /= 2
        assert interrupted is not None, \
            "could not interrupt the run — benchmark too fast to cut"
        unsat_prefix = sum(1 for s in interrupted.per_depth
                           if s.decision == "unsat")
        key = derive_store_key(spec, library, "sat").bounds_key
        banked = SynthesisStore(root).proven_bound(key)
        assert banked == unsat_prefix - 1 if unsat_prefix else banked is None

        resumed = synthesize(spec, kinds=("mct",), engine="sat",
                             time_limit=TIME_LIMIT, store=root)
        assert resumed.realized
        if banked is not None:
            assert resumed.store_resumed_from == banked
            assert resumed.per_depth[0].depth == banked + 1, \
                "resume re-proved a depth the ledger already held"
        _assert_identical("resume", resumed, baseline)
        _payload["resume"] = {
            "benchmark": RESUME_BENCH,
            "baseline_s": baseline.runtime,
            "interrupt_budget_s": budget,
            "banked_bound": banked,
            "resumed_from": resumed.store_resumed_from,
            "resumed_first_depth": (resumed.per_depth[0].depth
                                    if resumed.per_depth else None),
            "resumed_s": resumed.runtime,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _export():
    if not _payload:
        return
    _payload.update({
        "bench": "store",
        "min_speedup": MIN_SPEEDUP,
        "time_limit_s": TIME_LIMIT,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "calibration_s": machine_calibration(),
    })
    path = _json_path()
    if path:
        with open(path, "w") as handle:
            json.dump(_payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    append_history("store", _payload)
    hits = _payload.get("hits")
    if hits:
        rows = [
            f"{label:18s} {case['cold_s']:8.3f}s {case['warm_s']:8.4f}s "
            f"{case['speedup']:8.1f}x"
            for label, case in hits["cases"].items()]
        rows.append(f"{'AGGREGATE':18s} {hits['cold_total_s']:8.3f}s "
                    f"{hits['warm_total_s']:8.4f}s "
                    f"{hits['aggregate_speedup']:8.1f}x")
        header = f"{'BENCH/ENGINE':18s} {'COLD':>9s} {'WARM':>9s} {'SPEEDUP':>9s}"
        print_table("PERSISTENT STORE — identical answers asserted, then speed",
                    header, rows,
                    "Warm = served from the content-addressed result store; "
                    "no engine constructed, same circuits bit for bit.")
    resume = _payload.get("resume")
    if resume:
        print(f"\nresume: {resume['benchmark']} interrupted at "
              f"{resume['interrupt_budget_s']:.3f}s banked bound "
              f"{resume['banked_bound']}, follow-up resumed from depth "
              f"{resume['resumed_first_depth']} and matched the baseline.")


def teardown_module(module):
    _export()


if __name__ == "__main__":
    test_warm_pass_is_all_hits_and_an_order_of_magnitude_faster()
    test_timeout_interrupted_run_resumes_from_banked_bound()
    _export()
