"""Orbit canonicalization: variant-sweep speedup — identity-pinned.

One claim is measured, with correctness asserted before any speed
number is reported (``docs/store.md`` § Orbit canonicalization):

* a store warmed with **one** representative per benchmark serves
  every member of its equivalence orbit.  Deterministic orbit variants
  (line relabelings, the functional inverse, negation conjugations
  under the mpmct library) are synthesized twice — against the warm
  orbit store and as full literal-key synthesis — and every store run
  must be a hit whose replayed circuits realize the *variant* spec at
  the representative's depth / solution count / quantum-cost range,
  before the aggregate warm-over-literal speedup is asserted
  ``>= MIN_SPEEDUP``.

Exports ``BENCH_orbit.json`` (honoring ``REPRO_TRACE_DIR`` /
``REPRO_TRACE=0``).

Run:  cd benchmarks && PYTHONPATH=../src python -m pytest bench_orbit.py -q -s
 or:  PYTHONPATH=src python benchmarks/bench_orbit.py
"""

import json
import os
import platform
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _tables import append_history, machine_calibration, print_table

import repro.obs as obs
from repro.core.spec import Specification
from repro.core.transform import LineTransform, OrbitTransform
from repro.functions import get_spec
from repro.synth import synthesize
from repro.verify import circuit_realizes

#: (benchmark, library kinds, engine) — exact mode at n=3 with and
#: without the negation arm, bucket mode at n=5.
CASES = (
    ("3_17", ("mct",), "bdd"),
    ("3_17", ("mpmct",), "bdd"),
    ("mod5d1_s", ("mct",), "sat"),
)

#: Acceptance floor for the aggregate warm-over-literal speedup.
MIN_SPEEDUP = 5.0

TIME_LIMIT = 120.0

_payload = {}


def _json_path():
    if os.environ.get("REPRO_TRACE") == "0":
        return None
    directory = os.environ.get("REPRO_TRACE_DIR", ".")
    return os.path.join(directory, "BENCH_orbit.json")


def _variant_transforms(n, use_negation):
    """Five deterministic orbit elements inside the allowed subgroup."""
    rotation = tuple((i + 1) % n for i in range(n))
    reversal = tuple(reversed(range(n)))
    mask = 0b011 if use_negation else 0
    return (
        OrbitTransform(LineTransform(n, rotation)),
        OrbitTransform(LineTransform(n, reversal)),
        OrbitTransform(LineTransform.identity(n), invert=True),
        OrbitTransform(LineTransform(n, rotation, mask=mask), invert=True),
        OrbitTransform(LineTransform(n, reversal, mask=1 if use_negation
                                     else 0)),
    )


def _assert_replay(label, warm, cold, variant_spec):
    """A variant hit must replay the representative's answer, rotated."""
    assert warm.store_hit, f"{label}: variant run missed the store"
    assert warm.status == cold.status, \
        f"{label}: warm {warm.status} != cold {cold.status}"
    assert warm.depth == cold.depth, \
        f"{label}: warm depth {warm.depth} != cold {cold.depth}"
    assert warm.num_solutions == cold.num_solutions, \
        f"{label}: solution counts diverge"
    assert (warm.quantum_cost_min, warm.quantum_cost_max) \
        == (cold.quantum_cost_min, cold.quantum_cost_max), \
        f"{label}: quantum-cost range diverges"
    for circuit in warm.circuits:
        assert circuit_realizes(circuit, variant_spec), \
            f"{label}: replayed circuit does not realize the variant"


def test_orbit_variants_replay_from_one_representative():
    registry = obs.default_registry()
    registry.reset()
    root = tempfile.mkdtemp(prefix="bench-orbit-")
    try:
        cases = {}
        literal_total = orbit_total = 0.0
        for name, kinds, engine in CASES:
            spec = get_spec(name)
            cold = synthesize(spec, kinds=kinds, engine=engine,
                              time_limit=TIME_LIMIT, store=root)
            assert not cold.store_hit
            use_negation = "mpmct" in kinds
            table = spec.permutation()
            for index, w in enumerate(_variant_transforms(spec.n_lines,
                                                          use_negation)):
                variant = Specification.from_permutation(
                    w.apply_to_table(table),
                    name=f"{name}~orbit{index}")
                label = f"{name}/{'+'.join(kinds)}/{engine}#{index}"
                start = time.perf_counter()
                literal = synthesize(variant, kinds=kinds, engine=engine,
                                     time_limit=TIME_LIMIT)
                literal_s = time.perf_counter() - start
                assert literal.depth == cold.depth, \
                    f"{label}: orbit variant has a different minimal depth"
                warm_s = float("inf")
                for _ in range(3):  # best-of-3: lookups are ~ms, noisy
                    start = time.perf_counter()
                    warm = synthesize(variant, kinds=kinds, engine=engine,
                                      time_limit=TIME_LIMIT, store=root)
                    warm_s = min(warm_s, time.perf_counter() - start)
                _assert_replay(label, warm, cold, variant)
                literal_total += literal_s
                orbit_total += warm_s
                # Per-case timings are single-shot/best-of-3 and too
                # noisy for the 25% regression gate — exported in ms
                # (non-gating); the aggregates below carry the _s
                # suffix and gate.
                cases[label] = {
                    "depth": warm.depth, "circuits": len(warm.circuits),
                    "literal_ms": literal_s * 1e3,
                    "orbit_ms": warm_s * 1e3,
                    "speedup": (literal_s / warm_s if warm_s
                                else float("inf")),
                }
        aggregate = (literal_total / orbit_total if orbit_total
                     else float("inf"))
        assert aggregate >= MIN_SPEEDUP, \
            f"aggregate orbit speedup {aggregate:.1f}x below the " \
            f"{MIN_SPEEDUP:.0f}x floor"
        snapshot = registry.snapshot()
        assert snapshot.get("store.orbit_mismatches", 0) == 0
        _payload["variants"] = {
            "cases": cases,
            "literal_total_s": literal_total,
            "orbit_total_s": orbit_total,
            "aggregate_speedup": aggregate,
            "orbit_hits": snapshot.get("store.orbit_hits", 0),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _export():
    if not _payload:
        return
    _payload.update({
        "bench": "orbit",
        "min_speedup": MIN_SPEEDUP,
        "time_limit_s": TIME_LIMIT,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "calibration_s": machine_calibration(),
    })
    path = _json_path()
    if path:
        with open(path, "w") as handle:
            json.dump(_payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    append_history("orbit", _payload)
    variants = _payload.get("variants")
    if variants:
        rows = [
            f"{label:26s} {case['literal_ms'] / 1e3:8.3f}s "
            f"{case['orbit_ms'] / 1e3:8.4f}s {case['speedup']:8.1f}x"
            for label, case in variants["cases"].items()]
        rows.append(f"{'AGGREGATE':26s} {variants['literal_total_s']:8.3f}s "
                    f"{variants['orbit_total_s']:8.4f}s "
                    f"{variants['aggregate_speedup']:8.1f}x")
        header = (f"{'VARIANT':26s} {'LITERAL':>9s} {'ORBIT':>9s} "
                  f"{'SPEEDUP':>9s}")
        print_table("ORBIT CANONICALIZATION — verified replays, then speed",
                    header, rows,
                    "Orbit = served from one stored representative, circuits "
                    "conjugated into the variant's frame and re-verified.")


def teardown_module(module):
    _export()


if __name__ == "__main__":
    test_orbit_variants_replay_from_one_representative()
    _export()
