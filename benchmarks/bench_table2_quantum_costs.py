"""Table 2 — solution counts and quantum costs of all minimal networks.

Reproduces the paper's second experiment: the BDD engine finds *all*
minimal Toffoli networks in one step, so for each benchmark the table
reports the number of solutions (#SOL) and the minimal and maximal
quantum costs over them.  Expected shape: many benchmarks admit multiple
minimal networks with a substantial quantum-cost spread (the paper's
4_49 spans 32 to >70), so picking the cheapest is a real win.

The whole sweep is fanned over the crash-isolated process pool of
:func:`repro.parallel.run_suite` once per session (``REPRO_WORKERS``
sets the pool size); each parametrized test then asserts its row.

Run:  pytest benchmarks/bench_table2_quantum_costs.py --benchmark-only -s
"""

import pytest

from _tables import (PAPER_NOTES, append_history, engine_timeout,
                     machine_calibration, print_table, tier, trace_file,
                     workers)
from repro.functions import table2_entries
from repro.parallel import SynthesisTask, run_suite

_results = {}


def _sweep():
    """Run every table cell through the pool, once per pytest session."""
    if _results:
        return _results
    entries = table2_entries(tier())
    tasks = [SynthesisTask(spec=entry.spec(), engine="bdd", kinds=("mct",),
                           time_limit=engine_timeout(), label=entry.name)
             for entry in entries]
    suite = run_suite(tasks, workers=workers(), trace=trace_file("table2"))
    for entry, report in zip(entries, suite.reports):
        if report.result is None:
            raise RuntimeError(f"{entry.name} failed: {report.error}")
        _results[entry.name] = report.result
    return _results


@pytest.mark.parametrize("entry", table2_entries(tier()), ids=lambda e: e.name)
def test_table2_all_solutions(entry):
    result = _sweep()[entry.name]
    if result.realized:
        assert result.num_solutions >= 1
        assert result.quantum_cost_min <= result.quantum_cost_max
        spec = entry.spec()
        for circuit in result.circuits[:100]:
            assert spec.matches_circuit(circuit)


def teardown_module(module):
    header = (f"{'BENCH':12s} {'D':>3s} {'TIME':>10s} {'#SOL':>8s} "
              f"{'QC min':>7s} {'QC max':>7s}")
    rows = []
    for entry in table2_entries(tier()):
        result = _results.get(entry.name)
        if result is None:
            continue
        if not result.realized:
            rows.append(f"{entry.name:12s}   -  >{engine_timeout():.0f}s")
            continue
        truncated = "+" if result.solutions_truncated else ""
        rows.append(f"{entry.name:12s} {result.depth:3d} "
                    f"{result.runtime:9.2f}s {result.num_solutions:8d} "
                    f"{result.quantum_cost_min:7d} "
                    f"{result.quantum_cost_max:6d}{truncated}")
    print_table(f"TABLE 2 — all minimal networks, quantum costs "
                f"({tier()} tier)", header, rows, PAPER_NOTES["table2"])
    append_history("table2", {
        "tier": tier(),
        "calibration_s": machine_calibration(),
        "cells": {name: {"runtime_s": result.runtime,
                         "depth": result.depth,
                         "num_solutions": result.num_solutions,
                         "qc_min": result.quantum_cost_min,
                         "qc_max": result.quantum_cost_max}
                  for name, result in _results.items()},
    })
