"""Table 2 — solution counts and quantum costs of all minimal networks.

Reproduces the paper's second experiment: the BDD engine finds *all*
minimal Toffoli networks in one step, so for each benchmark the table
reports the number of solutions (#SOL) and the minimal and maximal
quantum costs over them.  Expected shape: many benchmarks admit multiple
minimal networks with a substantial quantum-cost spread (the paper's
4_49 spans 32 to >70), so picking the cheapest is a real win.

Run:  pytest benchmarks/bench_table2_quantum_costs.py --benchmark-only -s
"""

import pytest

from _tables import PAPER_NOTES, engine_timeout, print_table, tier, trace_file
from repro.functions import table2_entries
from repro.synth import synthesize

_results = {}


def _run_benchmark(entry):
    result = synthesize(entry.spec(), kinds=("mct",), engine="bdd",
                        time_limit=engine_timeout(),
                        trace=trace_file("table2"))
    _results[entry.name] = result
    return result


@pytest.mark.parametrize("entry", table2_entries(tier()), ids=lambda e: e.name)
def test_table2_all_solutions(benchmark, entry):
    result = benchmark.pedantic(_run_benchmark, args=(entry,),
                                rounds=1, iterations=1)
    if result.realized:
        assert result.num_solutions >= 1
        assert result.quantum_cost_min <= result.quantum_cost_max
        spec = entry.spec()
        for circuit in result.circuits[:100]:
            assert spec.matches_circuit(circuit)


def teardown_module(module):
    header = (f"{'BENCH':12s} {'D':>3s} {'TIME':>10s} {'#SOL':>8s} "
              f"{'QC min':>7s} {'QC max':>7s}")
    rows = []
    for entry in table2_entries(tier()):
        result = _results.get(entry.name)
        if result is None:
            continue
        if not result.realized:
            rows.append(f"{entry.name:12s}   -  >{engine_timeout():.0f}s")
            continue
        truncated = "+" if result.solutions_truncated else ""
        rows.append(f"{entry.name:12s} {result.depth:3d} "
                    f"{result.runtime:9.2f}s {result.num_solutions:8d} "
                    f"{result.quantum_cost_min:7d} "
                    f"{result.quantum_cost_max:6d}{truncated}")
    print_table(f"TABLE 2 — all minimal networks, quantum costs "
                f"({tier()} tier)", header, rows, PAPER_NOTES["table2"])
